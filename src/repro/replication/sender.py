"""The primary's side of the replication stream.

:class:`ReplicationSender` decouples commits from the backup link: the
server enqueues records under its segment write lock (cheap — an append
to an in-memory queue) and a worker thread ships them in order, so a slow
or dead backup never stalls a client's release.  Replication is therefore
*asynchronous* by default: the durability guarantee against a primary
crash comes from the primary's WAL; the backup bounds recovery time, not
data loss.  In quorum-ack mode (``InterWeaveServer(quorum_ack=True)``)
the server additionally waits — bounded — for the backup's ack before
answering a release, trading latency for RPO=0 across machine loss;
:meth:`append_diff` hands it a :class:`ReplicationTicket` to wait on.

The stream is self-healing.  Every record is acknowledged with the
backup's resulting segment version; a nack (``ok=False``) means the
backup cannot apply the record in sequence — it has never seen the
segment, or the stream has a gap (records dropped while the link was
down).  The sender then performs a *catchup*: it exports the segment from
the primary (checkpoint image + cached diffs, the same payload migration
uses) and ships it as one ``ReplicateCatchupRequest``, after which the
incremental stream resumes.  Because a catchup installs a fresh segment
entry at the backup (wiping any mirrored lease) and because a *dropped*
lease record is never re-shipped by the data-only catchup payload, every
successful catchup re-asserts the segment's live lease from the
primary's current state.

Gaps do not wait for new client writes.  A record that dies in flight
(transport error) or is evicted by queue overflow marks its segment
*dirty*; a catchup probe heals every dirty segment as soon as the
channel shows signs of life (a reconnect, or any later record shipping
successfully) — without it, a gap on a quiet segment would leave the
backup divergent until the next client write happened to trigger a nack.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import List, Optional, Set, Tuple

from repro.errors import InterWeaveError, ServerError, TransportError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.transport.base import Channel
from repro.wire.messages import (
    REPL_DIFF,
    REPL_LEASE,
    REPL_PROMOTE,
    ErrorReply,
    ReplicateAck,
    ReplicateAppendRequest,
    ReplicateCatchupRequest,
    decode_message,
    encode_message,
)

_log = logging.getLogger(__name__)


class ReplicationTicket:
    """Completion handle for one enqueued diff record (quorum-ack mode).

    ``wait(timeout)`` returns True once the record's fate is decided;
    ``ok`` then says whether the backup actually holds the version (an
    ack, directly or via the catchup that healed a nack).  A ticket that
    completes with ``ok=False`` — dropped record, dead link, abandoned
    queue — tells the waiting release to degrade to asynchronous
    replication rather than block forever.
    """

    __slots__ = ("_event", "ok")

    def __init__(self):
        self._event = threading.Event()
        self.ok = False

    def complete(self, ok: bool) -> None:
        self.ok = ok
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)


class _QueueItem:
    """One enqueued record plus the ticket (if any) riding on it."""

    __slots__ = ("record", "ticket")

    def __init__(self, record: ReplicateAppendRequest,
                 ticket: Optional[ReplicationTicket]):
        self.record = record
        self.ticket = ticket


class ReplicationSender:
    """Ships a server's diff/lease stream to one downstream replica.

    ``server`` is the upstream copy (used to export segments for
    catchups and to read current lease state); ``channel`` is any
    request/reply channel to the replica.  Attach with
    ``server.attach_replicator(sender)``.  The upstream server may
    itself be a backup — a backup with a sender forwards every record it
    applies, forming a chain (primary → backup → backup) that promotion
    can climb.
    """

    def __init__(self, server, channel: Channel,
                 client_id: str = "!replication",
                 metrics: Optional[MetricsRegistry] = None,
                 max_queue: int = 65536):
        self.server = server
        self.channel = channel
        self.client_id = client_id
        self._queue: "deque[_QueueItem]" = deque()
        self._max_queue = max_queue
        self._cv = threading.Condition()
        self._busy = False
        self._stopped = False
        #: segments with a known (or suspected) gap at the backup; healed
        #: by catchup probes, guarded by ``self._cv``
        self._dirty: Set[str] = set()
        #: a probe pass is requested (channel recovered, overflow evicted
        #: a record, or a chained catchup must propagate); guarded by
        #: ``self._cv``
        self._probe_pending = False
        registry = metrics or get_registry()
        self._m_appends = registry.counter(
            "replication.appends", "records shipped to the backup")
        self._m_catchups = registry.counter(
            "replication.catchups", "full-segment catchups shipped")
        self._m_errors = registry.counter(
            "replication.errors",
            "records dropped on transport/server errors (the segment is "
            "marked dirty and healed by a catchup probe)")
        self._m_overflow = registry.counter(
            "replication.overflow_drops",
            "diff records evicted by the queue bound (the gap is healed "
            "by a catchup probe)")
        self._m_probes = registry.counter(
            "replication.catchup_probes",
            "dirty-segment catchups shipped by the probe path (gap healed "
            "without waiting for new client writes)")
        self._m_lease_reasserts = registry.counter(
            "replication.lease_reasserts",
            "live leases re-shipped after a catchup (catchups install "
            "fresh segment state, wiping the mirrored lease)")
        self._m_abandoned = registry.counter(
            "replication.abandoned",
            "queued records explicitly abandoned (promotion under a "
            "backlog that would not drain)")
        self._m_lag = registry.gauge(
            "replication.lag_versions",
            "primary minus backup version at the last acknowledged record")
        self._m_depth = registry.gauge(
            "replication.queue_depth", "records waiting to be shipped")
        if channel.reconnect_listener is None:
            channel.reconnect_listener = self._on_reconnect
        self._worker = threading.Thread(target=self._run,
                                        name=f"replication-{client_id}",
                                        daemon=True)
        self._worker.start()

    # -- producer side (called by the server, under its segment lock) --------

    def append_diff(self, segment: str, from_version: int, to_version: int,
                    encoded: bytes, timestamp: float,
                    ticket: bool = False) -> Optional[ReplicationTicket]:
        """Enqueue one committed diff.  With ``ticket=True`` (quorum-ack
        mode) returns a :class:`ReplicationTicket` the caller can wait
        on; otherwise returns None.

        ``encoded`` is the release's shared buffer (the same bytes the
        DiffCache retains and the WAL wrote); it is held by reference
        here and copied exactly once, into the stream message at ship
        time (counted in ``wire.bytes_copied``)."""
        handle = ReplicationTicket() if ticket else None
        self._enqueue(ReplicateAppendRequest(
            kind=REPL_DIFF, segment=segment, from_version=from_version,
            to_version=to_version, timestamp=timestamp, payload=encoded,
            client_id=self.client_id), handle)
        return handle

    def append_lease(self, segment: str, writer: str, expiry: float) -> None:
        self._enqueue(ReplicateAppendRequest(
            kind=REPL_LEASE, segment=segment, writer=writer,
            lease_expiry=expiry, client_id=self.client_id))

    def request_catchup(self, segment: str) -> None:
        """Schedule a full-state catchup for ``segment`` (used by chained
        backups to propagate a catchup they just installed, and by tests
        to heal a known gap)."""
        with self._cv:
            if self._stopped:
                return
            self._dirty.add(segment)
            self._probe_pending = True
            self._cv.notify_all()

    def _enqueue(self, record: ReplicateAppendRequest,
                 ticket: Optional[ReplicationTicket] = None) -> None:
        with self._cv:
            if self._stopped:
                if ticket is not None:
                    ticket.complete(False)
                return
            if len(self._queue) >= self._max_queue:
                self._evict_oldest_diff_locked()
            self._queue.append(_QueueItem(record, ticket))
            self._m_depth.set(len(self._queue))
            self._cv.notify_all()

    def _evict_oldest_diff_locked(self) -> None:
        """Make room by dropping the oldest *diff* record; caller holds
        ``self._cv``.

        Only diff records are evictable: the gap a dropped diff opens is
        healed by the nack→catchup path (and the probe the eviction
        schedules), but a dropped ``REPL_LEASE`` or ``REPL_PROMOTE`` is
        never re-shipped by catchup — which carries data only — so
        losing one silently corrupts failover.  Non-diff records are
        rare (a handful per segment), so exempting them keeps the queue
        effectively bounded.
        """
        for index, item in enumerate(self._queue):
            if item.record.kind != REPL_DIFF:
                continue
            del self._queue[index]
            self._m_overflow.inc()
            if item.ticket is not None:
                item.ticket.complete(False)
            if item.record.segment:
                # the channel is healthy (the queue is full because the
                # backup is slow, not dead): probe as soon as possible
                self._dirty.add(item.record.segment)
                self._probe_pending = True
            return
        # nothing evictable (the queue is all lease/promote records):
        # overflow briefly rather than corrupt failover state

    # -- worker side ----------------------------------------------------------

    def _on_reconnect(self) -> None:
        """The channel re-established a lost connection: gaps opened by
        in-flight losses can be healed now, without waiting for new
        client writes to trigger a nack."""
        with self._cv:
            if self._dirty:
                self._probe_pending = True
                self._cv.notify_all()

    def _run(self) -> None:
        while True:
            probe_segments: List[str] = []
            with self._cv:
                while True:
                    if self._probe_pending and not self._dirty:
                        # a probe was requested but everything healed in
                        # the meantime; consume the flag or flush() would
                        # wait on it forever
                        self._probe_pending = False
                        self._cv.notify_all()
                    if self._queue or self._stopped or \
                            (self._probe_pending and self._dirty):
                        break
                    self._cv.wait()
                if not self._queue and self._stopped:
                    return
                if self._queue:
                    item = self._queue.popleft()
                    self._m_depth.set(len(self._queue))
                else:
                    # queue idle and a probe is due: heal dirty segments
                    item = None
                    self._probe_pending = False
                    probe_segments = sorted(self._dirty)
                self._busy = True
            try:
                if item is not None:
                    self._ship(item.record, item.ticket)
                else:
                    for segment in probe_segments:
                        if self._catchup(segment):
                            self._m_probes.inc()
            except Exception:  # noqa: BLE001 — the stream must survive
                self._m_errors.inc()
                _log.exception("replication worker pass failed")
                if item is not None and item.ticket is not None:
                    item.ticket.complete(False)
            finally:
                with self._cv:
                    self._busy = False
                    self._cv.notify_all()

    def _ship(self, record: ReplicateAppendRequest,
              ticket: Optional[ReplicationTicket] = None) -> None:
        try:
            ack = self._request(record)
        except (TransportError, ServerError):
            self._m_errors.inc()
            if ticket is not None:
                ticket.complete(False)
            if record.kind == REPL_DIFF and record.segment:
                # the gap must not wait for the next client write: mark
                # the segment and let the reconnect probe heal it
                with self._cv:
                    self._dirty.add(record.segment)
            return
        self._m_appends.inc()
        if ack.ok:
            if record.kind == REPL_DIFF:
                self._m_lag.set(max(0, record.to_version - ack.version))
                self._mark_clean(record.segment)
            if ticket is not None:
                ticket.complete(True)
            self._wake_probe_if_dirty()
            return
        healed = self._catchup(record.segment)
        if ticket is not None:
            ticket.complete(healed)

    def _catchup(self, segment: str) -> bool:
        """Ship a full-state resync for ``segment``; True when the backup
        acked it (the segment is then clean and its lease re-asserted)."""
        try:
            version, payload, diffs = self.server.export_segment(segment)
        except InterWeaveError:
            self._m_errors.inc()
            _log.exception("cannot export %r for catchup", segment)
            return False
        try:
            ack = self._request(ReplicateCatchupRequest(
                segment=segment, version=version, payload=payload,
                diffs=diffs, client_id=self.client_id))
        except (TransportError, ServerError):
            self._m_errors.inc()
            with self._cv:
                self._dirty.add(segment)
            return False
        self._m_catchups.inc()
        if not ack.ok:
            return False
        self._m_lag.set(max(0, version - ack.version))
        self._mark_clean(segment)
        # A catchup installs a fresh segment entry at the backup, wiping
        # any mirrored lease — and if the record that opened this gap
        # was itself a dropped lease, nothing else would ever re-ship
        # it.  Re-assert the live lease from current state.
        self._reassert_lease(segment)
        return True

    def _reassert_lease(self, segment: str) -> None:
        lease_of = getattr(self.server, "lease_of", None)
        if lease_of is None:
            return
        writer, expiry = lease_of(segment)
        if not writer:
            return
        try:
            self._request(ReplicateAppendRequest(
                kind=REPL_LEASE, segment=segment, writer=writer,
                lease_expiry=expiry, client_id=self.client_id))
            self._m_lease_reasserts.inc()
        except (TransportError, ServerError):
            self._m_errors.inc()
            with self._cv:
                self._dirty.add(segment)

    def _mark_clean(self, segment: str) -> None:
        with self._cv:
            self._dirty.discard(segment)

    def _wake_probe_if_dirty(self) -> None:
        """A request just succeeded: the channel works, so any dirty
        segment can be healed right now."""
        with self._cv:
            if self._dirty:
                self._probe_pending = True
                self._cv.notify_all()

    def _request(self, message) -> ReplicateAck:
        raw = self.channel.request(encode_message(message))
        reply = decode_message(raw)
        if isinstance(reply, ErrorReply):
            raise ServerError(reply.message)
        if not isinstance(reply, ReplicateAck):
            raise ServerError(
                f"backup answered {type(reply).__name__}, not ReplicateAck")
        return reply

    # -- lifecycle ------------------------------------------------------------

    def send_promote(self) -> None:
        """Synchronously tell the backup to become primary."""
        self._request(ReplicateAppendRequest(kind=REPL_PROMOTE,
                                             client_id=self.client_id))

    def dirty_segments(self) -> Set[str]:
        """Segments with a known gap at the backup (diagnostics)."""
        with self._cv:
            return set(self._dirty)

    def flush(self, timeout: float = 30.0) -> bool:
        """Block until every enqueued record has been shipped and every
        dirty segment probed; False if the stream did not settle in time
        (records still queued, or a gap the channel cannot heal)."""
        with self._cv:
            if self._dirty:
                self._probe_pending = True
                self._cv.notify_all()
            settled = self._cv.wait_for(
                lambda: not self._queue and not self._busy
                and not self._probe_pending, timeout)
            return settled and not self._dirty

    def abandon(self) -> int:
        """Drop every queued record and dirty mark *explicitly* — the
        promotion-under-backlog escape hatch, so a promotion never
        rebinds the directory while records it believes shipped are
        still sitting in this queue.  Returns how many records were
        abandoned; their tickets complete with ``ok=False``."""
        with self._cv:
            abandoned = len(self._queue)
            for item in self._queue:
                if item.ticket is not None:
                    item.ticket.complete(False)
            self._queue.clear()
            self._dirty.clear()
            self._probe_pending = False
            self._m_depth.set(0)
            self._cv.notify_all()
        if abandoned:
            self._m_abandoned.inc(abandoned)
            _log.warning("replication queue abandoned with %d records "
                         "(promotion under backlog)", abandoned)
        return abandoned

    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding records, then stop the worker."""
        self.flush(timeout)
        with self._cv:
            self._stopped = True
            for item in self._queue:
                if item.ticket is not None:
                    item.ticket.complete(False)
            self._cv.notify_all()
        self._worker.join(timeout)
