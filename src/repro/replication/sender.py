"""The primary's side of the replication stream.

:class:`ReplicationSender` decouples commits from the backup link: the
server enqueues records under its segment write lock (cheap — an append
to an in-memory queue) and a worker thread ships them in order, so a slow
or dead backup never stalls a client's release.  Replication is therefore
*asynchronous*: the durability guarantee against a primary crash comes
from the primary's WAL; the backup bounds recovery time, not data loss.

The stream is self-healing.  Every record is acknowledged with the
backup's resulting segment version; a nack (``ok=False``) means the
backup cannot apply the record in sequence — it has never seen the
segment, or the stream has a gap (records dropped while the link was
down).  The sender then performs a *catchup*: it exports the segment from
the primary (checkpoint image + cached diffs, the same payload migration
uses) and ships it as one ``ReplicateCatchupRequest``, after which the
incremental stream resumes.  Transport errors just drop the record and
count it — the next record's nack triggers the catchup that heals the
gap.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Optional

from repro.errors import InterWeaveError, ServerError, TransportError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.transport.base import Channel
from repro.wire.messages import (
    REPL_DIFF,
    REPL_LEASE,
    REPL_PROMOTE,
    ErrorReply,
    ReplicateAck,
    ReplicateAppendRequest,
    ReplicateCatchupRequest,
    decode_message,
    encode_message,
)

_log = logging.getLogger(__name__)


class ReplicationSender:
    """Ships a primary server's diff/lease stream to one backup.

    ``server`` is the primary (used to export segments for catchups);
    ``channel`` is any request/reply channel to the backup.  Attach with
    ``server.attach_replicator(sender)``.
    """

    def __init__(self, server, channel: Channel,
                 client_id: str = "!replication",
                 metrics: Optional[MetricsRegistry] = None,
                 max_queue: int = 65536):
        self.server = server
        self.channel = channel
        self.client_id = client_id
        self._queue = deque()
        self._max_queue = max_queue
        self._cv = threading.Condition()
        self._busy = False
        self._stopped = False
        registry = metrics or get_registry()
        self._m_appends = registry.counter(
            "replication.appends", "records shipped to the backup")
        self._m_catchups = registry.counter(
            "replication.catchups", "full-segment catchups shipped")
        self._m_errors = registry.counter(
            "replication.errors",
            "records dropped on transport/server errors (healed by the "
            "next catchup)")
        self._m_lag = registry.gauge(
            "replication.lag_versions",
            "primary minus backup version at the last acknowledged record")
        self._m_depth = registry.gauge(
            "replication.queue_depth", "records waiting to be shipped")
        self._worker = threading.Thread(target=self._run,
                                        name=f"replication-{client_id}",
                                        daemon=True)
        self._worker.start()

    # -- producer side (called by the server, under its segment lock) --------

    def append_diff(self, segment: str, from_version: int, to_version: int,
                    encoded: bytes, timestamp: float) -> None:
        self._enqueue(ReplicateAppendRequest(
            kind=REPL_DIFF, segment=segment, from_version=from_version,
            to_version=to_version, timestamp=timestamp, payload=encoded,
            client_id=self.client_id))

    def append_lease(self, segment: str, writer: str, expiry: float) -> None:
        self._enqueue(ReplicateAppendRequest(
            kind=REPL_LEASE, segment=segment, writer=writer,
            lease_expiry=expiry, client_id=self.client_id))

    def _enqueue(self, record: ReplicateAppendRequest) -> None:
        with self._cv:
            if self._stopped:
                return
            if len(self._queue) >= self._max_queue:
                # drop the oldest: the gap it opens is healed by the nack
                # -> catchup path, and an unbounded queue would let a dead
                # backup consume the primary's memory
                self._queue.popleft()
                self._m_errors.inc()
            self._queue.append(record)
            self._m_depth.set(len(self._queue))
            self._cv.notify_all()

    # -- worker side ----------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopped:
                    self._cv.wait()
                if not self._queue and self._stopped:
                    return
                record = self._queue.popleft()
                self._m_depth.set(len(self._queue))
                self._busy = True
            try:
                self._ship(record)
            except Exception:  # noqa: BLE001 — the stream must survive
                self._m_errors.inc()
                _log.exception("replication record for %r dropped",
                               record.segment)
            finally:
                with self._cv:
                    self._busy = False
                    self._cv.notify_all()

    def _ship(self, record: ReplicateAppendRequest) -> None:
        try:
            ack = self._request(record)
        except (TransportError, ServerError):
            self._m_errors.inc()
            return  # gap opens; the backup's next nack triggers catchup
        self._m_appends.inc()
        if ack.ok:
            if record.kind == REPL_DIFF:
                self._m_lag.set(max(0, record.to_version - ack.version))
            return
        self._catchup(record.segment)
        if record.kind == REPL_LEASE:
            # the lease preceded the data; now that the data is there,
            # the lease must be re-asserted or failover would lose it
            try:
                self._request(record)
            except (TransportError, ServerError):
                self._m_errors.inc()

    def _catchup(self, segment: str) -> None:
        try:
            version, payload, diffs = self.server.export_segment(segment)
        except InterWeaveError:
            self._m_errors.inc()
            _log.exception("cannot export %r for catchup", segment)
            return
        try:
            ack = self._request(ReplicateCatchupRequest(
                segment=segment, version=version, payload=payload,
                diffs=diffs, client_id=self.client_id))
        except (TransportError, ServerError):
            self._m_errors.inc()
            return
        self._m_catchups.inc()
        if ack.ok:
            self._m_lag.set(max(0, version - ack.version))

    def _request(self, message) -> ReplicateAck:
        raw = self.channel.request(encode_message(message))
        reply = decode_message(raw)
        if isinstance(reply, ErrorReply):
            raise ServerError(reply.message)
        if not isinstance(reply, ReplicateAck):
            raise ServerError(
                f"backup answered {type(reply).__name__}, not ReplicateAck")
        return reply

    # -- lifecycle ------------------------------------------------------------

    def send_promote(self) -> None:
        """Synchronously tell the backup to become primary."""
        self._request(ReplicateAppendRequest(kind=REPL_PROMOTE,
                                             client_id=self.client_id))

    def flush(self, timeout: float = 30.0) -> bool:
        """Block until every enqueued record has been shipped (or
        dropped); False if the queue did not drain in time."""
        with self._cv:
            return self._cv.wait_for(
                lambda: not self._queue and not self._busy, timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding records, then stop the worker."""
        self.flush(timeout)
        with self._cv:
            self._stopped = True
            self._cv.notify_all()
        self._worker.join(timeout)
