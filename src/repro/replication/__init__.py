"""Primary-backup replication (docs/PROTOCOL.md §11, docs/ROBUSTNESS.md).

A primary :class:`~repro.server.InterWeaveServer` feeds its committed
diff stream and write-lease transitions to a :class:`ReplicationSender`,
which ships them to a backup server over any ordinary
:class:`~repro.transport.Channel`.  The backup applies the stream via the
``ReplicateAppend``/``ReplicateCatchup`` handlers built into the server;
promotion (``repro.cluster.ClusterCoordinator.promote_backup``) turns it
into a serving primary that honors the failed primary's outstanding
leases.
"""

from repro.replication.sender import ReplicationSender, ReplicationTicket

__all__ = ["ReplicationSender", "ReplicationTicket"]
