"""Exception hierarchy for the InterWeave reproduction.

All library errors derive from :class:`InterWeaveError` so applications can
catch middleware failures with a single handler while letting programming
errors (``TypeError`` etc.) propagate.
"""


class InterWeaveError(Exception):
    """Base class for all InterWeave errors."""


class SegmentError(InterWeaveError):
    """A segment could not be opened, created, or found."""


class BlockError(InterWeaveError):
    """A block could not be allocated, freed, or located."""


class TypeDescriptorError(InterWeaveError):
    """A type descriptor is malformed or used inconsistently."""


class IDLError(InterWeaveError):
    """An IDL source file failed to lex, parse, or type-check."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class MIPError(InterWeaveError):
    """A machine-independent pointer is malformed or unresolvable."""


class ProtectionError(InterWeaveError):
    """A store hit memory that is not writable even after fault handling."""


class LockError(InterWeaveError):
    """A lock was used incorrectly (e.g. writing without a write lock)."""


class WireFormatError(InterWeaveError):
    """A wire-format message or diff failed to decode."""


class TransportError(InterWeaveError):
    """The transport layer failed to deliver a message."""


class TransportTimeout(TransportError):
    """A transport operation exceeded its deadline (connect, send, or recv).

    Retryable: the request may or may not have reached the server, so a
    retry must reuse the request's sequence number (the server's reply
    cache makes the re-send idempotent).
    """


class TransportDisconnected(TransportError):
    """The connection was lost (refused, reset, or closed mid-operation).

    Retryable: reconnect and re-send, again relying on sequence-number
    deduplication for idempotence.
    """


class RetryExhausted(TransportError):
    """Every attempt allowed by the :class:`~repro.transport.RetryPolicy`
    failed; ``__cause__`` is the last underlying transport error."""


class ServerError(InterWeaveError):
    """The server rejected a request."""


class WrongServerError(ServerError):
    """The addressed server does not (or no longer) serve the segment.

    Raised when a request is answered with a
    :class:`~repro.wire.messages.RedirectReply`.  Carries the origin the
    reply named so the caller can update its cached binding and retry
    there ("chase the redirect").
    """

    def __init__(self, segment: str, origin: str, generation: int = 0):
        super().__init__(
            f"segment {segment!r} is served by {origin!r} "
            f"(binding generation {generation})")
        self.segment = segment
        self.origin = origin
        self.generation = generation


class CoherenceError(InterWeaveError):
    """A coherence model was configured or used incorrectly."""


class CheckpointError(InterWeaveError):
    """A segment checkpoint could not be written or recovered."""


class WALError(InterWeaveError):
    """A diff write-ahead log could not be appended to or replayed."""
