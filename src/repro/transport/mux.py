"""Connection multiplexing: many requests in flight on one socket.

The serial :class:`~repro.transport.TCPChannel` admits one outstanding
request per connection — every RPC pays a full round trip before the
next can start, so a client touching many segments leaves the PR 3
per-segment server locks idle.  This module pipelines:

- :class:`_MuxCore` owns one socket plus a reader and a writer thread.
  Requests are registered in per-request *wait slots* keyed by the
  ``(nonce, seq)`` pair the reply frame echoes, so replies are matched
  to waiters by identity, not arrival order.  The writer coalesces
  frames that queue up while a previous send is on the wire into one
  gathered ``sendmsg`` (small requests batch under load; a lone request
  still leaves immediately — ``TCP_NODELAY`` stays set).
- :class:`MultiplexingChannel` is a virtual channel over a core: its own
  client id, session nonce, and sequence space, so the server's
  :class:`~repro.transport.ReplyCache` and lock tables see it as an
  ordinary client.  Many channels (application threads, the poller, a
  whole process of clients) share one core — and therefore one socket.
- :class:`MuxConnectionPool` hands out virtual channels over one shared
  core per server; its :meth:`~MuxConnectionPool.connect` method slots
  straight into ``InterWeaveClient(connector=...)``.

Fault tolerance composes with the PR 2 machinery: after a reconnect the
core re-sends only the unacknowledged in-flight window (the slots still
waiting), relying on the server's reply cache to deduplicate anything
that was actually processed; a per-request timeout re-sends that one
frame without abandoning the socket, because a late original reply is
matched by sequence number and the extra one is counted as an orphan
and dropped.  Contrast the serial channel, which must burn its socket
on every timeout precisely because it cannot tell replies apart.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    RetryExhausted,
    TransportDisconnected,
    TransportError,
    TransportTimeout,
)
from repro.obs.metrics import get_registry
from repro.transport.base import Channel, ReplyFuture
from repro.transport.retry import RetryPolicy, is_retryable
from repro.transport.tcp import (
    _recv_frame,
    _sendmsg_all,
    request_frame_buffers,
    split_reply_frame,
)

#: cap on request frames coalesced into one sendmsg batch
_MAX_SEND_BATCH = 32


class _Slot:
    """One in-flight request: its wire frame and the waiter's future."""

    __slots__ = ("key", "buffers", "future", "sent", "dead")

    def __init__(self, key: Tuple[int, int], buffers: Tuple[bytes, ...]):
        self.key = key
        self.buffers = buffers
        self.future = ReplyFuture()
        #: reached the wire at least once (reconnect re-sends only these;
        #: never-sent slots are still queued and go out normally)
        self.sent = False
        #: abandoned by its waiter; the writer skips it
        self.dead = False


class _MuxCore:
    """The shared half of a multiplexed connection: one socket, one
    reader thread, one writer thread, and the wait-slot table.

    The reader owns the socket's lifecycle.  On a socket error (from
    either thread) the socket is invalidated; with a
    :class:`RetryPolicy` the reader reconnects with backoff and re-sends
    the in-flight window, failing all waiters with
    :class:`~repro.errors.RetryExhausted` if one cycle's budget runs
    out (then keeps healing in the background); without a policy it
    fails all waiters immediately and reconnects lazily when the next
    request creates demand.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 retry: Optional[RetryPolicy] = None):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._slots: Dict[Tuple[int, int], _Slot] = {}
        self._send_queue: "queue.Queue" = queue.Queue()
        self._sock: Optional[socket.socket] = None
        self._closed = False
        self._close_event = threading.Event()
        self._listeners: List[Callable[[], None]] = []
        self._channels = 0
        self.reconnects = 0
        self.orphans = 0
        self.last_error: Optional[str] = None
        metrics = get_registry()
        self._m_inflight = metrics.gauge(
            "transport.mux.inflight",
            "requests awaiting replies on multiplexed connections")
        self._m_batch = metrics.histogram(
            "transport.mux.batch_frames",
            help="request frames coalesced into each sendmsg batch")
        self._m_queue_wait = metrics.histogram(
            "transport.mux.send_queue_wait_seconds",
            help="time requests spent queued behind the mux writer")
        self._m_orphans = metrics.counter(
            "transport.mux.orphan_replies",
            "replies that arrived after their waiter gave up (or duplicates)")
        self._m_reconnects = metrics.counter(
            "transport.reconnects", "channel connections re-established")
        self._m_reconnect_seconds = metrics.histogram(
            "transport.reconnect_seconds",
            help="time spent re-establishing lost connections")
        self._sock = self._connect()  # eager: construction surfaces bad endpoints
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-mux-reader", daemon=True)
        self._writer = threading.Thread(
            target=self._write_loop, name="repro-mux-writer", daemon=True)
        self._reader.start()
        self._writer.start()

    # -- connection management ------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"connect to {self._host}:{self._port} timed out after "
                f"{self._timeout:g}s") from exc
        except OSError as exc:
            raise TransportDisconnected(
                f"connect to {self._host}:{self._port} failed: {exc}") from exc
        # blocking socket: the reader sits in recv for as long as replies
        # are outstanding; per-request deadlines live in the waiters
        # (create_connection's timeout would otherwise stick to the socket)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _invalidate(self, sock: socket.socket, error: BaseException) -> bool:
        """Drop ``sock`` if it is still the current socket.

        Returns True if this call performed the invalidation (the
        caller observed the failure first); False if another thread
        already replaced or dropped it.
        """
        with self._lock:
            if self._sock is not sock:
                return False
            self._sock = None
            self.last_error = str(error)
            self._cond.notify_all()
        try:
            sock.close()
        except OSError:
            pass
        return True

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            slots = [s for s in self._slots.values() if not s.dead]
            self._slots.clear()
            self._m_inflight.set(0)
        for slot in slots:
            slot.future.fail(error)

    def _reconnect(self) -> None:
        """Reader-owned: re-establish the socket and re-send the
        unacknowledged in-flight window (slots that reached the wire);
        the server's reply cache deduplicates anything it already ran."""
        failures = 0
        while not self._closed:
            started = time.perf_counter()
            try:
                sock = self._connect()
            except (TransportTimeout, TransportDisconnected) as error:
                self.last_error = str(error)
                if self._retry is None:
                    # lazy mode: fail the waiters that created the demand
                    # and wait for the next request to try again
                    self._fail_pending(error)
                    return
                delay = self._retry.delay_for(failures)
                if delay is None:
                    # this cycle's budget is spent: unblock the waiters,
                    # then keep healing so later requests find a socket
                    self._fail_pending(RetryExhausted(
                        f"reconnect to {self._host}:{self._port} failed after "
                        f"{failures + 1} attempts: {error}"))
                    failures = 0
                    continue
                failures += 1
                if delay > 0 and self._close_event.wait(delay):
                    return
                continue
            with self._lock:
                self._sock = sock
                window = sorted(
                    (s for s in self._slots.values() if s.sent and not s.dead),
                    key=lambda s: s.key[1])
                self._cond.notify_all()
            self.reconnects += 1
            self._m_reconnects.inc()
            self._m_reconnect_seconds.observe(time.perf_counter() - started)
            for listener in list(self._listeners):
                listener()
            if window:
                buffers: List[bytes] = []
                for slot in window:
                    buffers.extend(slot.buffers)
                try:
                    _sendmsg_all(sock, buffers)
                except OSError as error:
                    if self._invalidate(sock, error):
                        continue  # the new socket died instantly: retry
            return

    def break_connection(self) -> None:
        """Fault-injection hook: sever the socket under the reader."""
        with self._lock:
            sock = self._sock
        if sock is not None:
            self._invalidate(sock, TransportDisconnected("connection broken"))

    # -- submit / cancel ------------------------------------------------------

    def submit(self, buffers: Tuple[bytes, ...],
               key: Tuple[int, int]) -> ReplyFuture:
        """Register a wait slot for (nonce, seq) and queue its frame."""
        slot = _Slot(key, buffers)
        with self._lock:
            if self._closed:
                raise TransportError("channel is closed")
            self._slots[key] = slot
            self._m_inflight.set(len(self._slots))
            if self._sock is None:
                self._cond.notify_all()  # wake a lazily-reconnecting reader
        self._send_queue.put((slot, time.perf_counter()))
        return slot.future

    def resend(self, key: Tuple[int, int]) -> Optional[ReplyFuture]:
        """Re-queue an in-flight request's frame (per-request timeout
        recovery).  The socket is *not* dropped: the original reply, if
        it ever lands, is matched by sequence number — the duplicate's
        is absorbed as an orphan.  Returns the slot's (fresh, if the old
        one failed) future, or None if the slot is gone."""
        with self._lock:
            if self._closed:
                raise TransportError("channel is closed")
            slot = self._slots.get(key)
            if slot is None or slot.dead:
                return None
            if slot.future.done():
                # the core failed it (disconnect); arm a fresh future so
                # the caller can wait for the re-sent copy
                slot.future = ReplyFuture()
            self._cond.notify_all()
        self._send_queue.put((slot, time.perf_counter()))
        return slot.future

    def cancel(self, key: Tuple[int, int]) -> None:
        """Forget a slot whose waiter gave up; a late reply becomes an
        orphan and any queued copy of the frame is skipped."""
        with self._lock:
            slot = self._slots.pop(key, None)
            if slot is not None:
                slot.dead = True
            self._m_inflight.set(len(self._slots))

    # -- threads --------------------------------------------------------------

    def _read_loop(self) -> None:
        while not self._closed:
            with self._lock:
                while self._sock is None and not self._closed:
                    if self._retry is not None or self._slots:
                        break  # reconnect: standing policy, or demand
                    self._cond.wait(timeout=0.2)
                if self._closed:
                    return
                sock = self._sock
            if sock is None:
                self._reconnect()
                continue
            try:
                frame = _recv_frame(sock)
                if frame is None:
                    raise TransportDisconnected("server closed the connection")
                nonce, seq, message = split_reply_frame(frame)
            except (TransportDisconnected, TransportError, OSError) as error:
                if self._closed:
                    return
                self._invalidate(sock, error)
                continue
            with self._lock:
                slot = self._slots.pop((nonce, seq), None)
                self._m_inflight.set(len(self._slots))
            if slot is None or slot.dead or slot.future.done():
                # late reply after a give-up, a duplicate after a resend,
                # or the server's (0, 0) unattributable-error marker
                self.orphans += 1
                self._m_orphans.inc()
                continue
            slot.future.resolve(message)

    def _write_loop(self) -> None:
        while True:
            item = self._send_queue.get()
            if item is None:
                return
            batch = [item]
            while len(batch) < _MAX_SEND_BATCH:
                try:
                    nxt = self._send_queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is None:
                    return
                batch.append(nxt)
            with self._lock:
                while self._sock is None and not self._closed:
                    self._cond.wait(timeout=0.2)
                if self._closed:
                    return
                sock = self._sock
            now = time.perf_counter()
            buffers: List[bytes] = []
            live = []
            for slot, enqueued in batch:
                if slot.dead or slot.future.done():
                    continue  # gave up, or already answered/failed
                self._m_queue_wait.observe(now - enqueued)
                buffers.extend(slot.buffers)
                live.append(slot)
            if not live:
                continue
            self._m_batch.observe(len(live))
            try:
                _sendmsg_all(sock, buffers)
            except OSError as error:
                if self._invalidate(sock, error):
                    # the batch never (fully) left: leave the slots
                    # pending — reconnect re-sends the sent window and
                    # re-queueing covers the rest
                    for slot, enqueued in batch:
                        if not slot.dead and not slot.sent:
                            self._send_queue.put((slot, enqueued))
                else:
                    # another thread already swapped the socket in; our
                    # batch missed the reconnect re-send, so re-queue it
                    for slot, enqueued in batch:
                        if not slot.dead:
                            self._send_queue.put((slot, enqueued))
                continue
            for slot in live:
                slot.sent = True

    # -- channel registry -----------------------------------------------------

    def attach(self, listener: Optional[Callable[[], None]] = None) -> None:
        with self._lock:
            self._channels += 1
        if listener is not None:
            self._listeners.append(listener)

    def detach(self, listener: Optional[Callable[[], None]] = None) -> None:
        if listener is not None and listener in self._listeners:
            self._listeners.remove(listener)
        with self._lock:
            self._channels -= 1

    @property
    def endpoint(self) -> str:
        return f"{self._host}:{self._port}"

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def inflight(self) -> int:
        return len(self._slots)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._close_event.set()
        self._send_queue.put(None)
        self._fail_pending(TransportError("channel is closed"))
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        for thread in (self._reader, self._writer):
            if thread is not threading.current_thread():
                thread.join(timeout=1.0)


class MultiplexingChannel(Channel):
    """A pipelined virtual channel over a (possibly shared) socket.

    Each channel carries its own client id, session nonce, and sequence
    space, so the server's lock attribution and retry dedup treat it as
    an independent client even when dozens of channels share one
    :class:`_MuxCore`.  ``request()`` blocks its calling thread only —
    other threads' requests proceed on the same socket, out-of-order
    replies land on the right waiters.  ``submit()`` returns a
    :class:`~repro.transport.ReplyFuture` for explicit pipelining from a
    single thread.

    With a :class:`RetryPolicy`, a per-request timeout re-sends that one
    frame (the connection is kept: replies match by sequence number) and
    a disconnection waits for the core's reconnect, counting attempts
    against the policy's budget; without one, timeouts and
    disconnections surface as typed errors for that request alone.
    """

    can_push = False

    def __init__(self, host: Optional[str] = None, port: Optional[int] = None,
                 client_id: str = "anonymous", timeout: float = 10.0,
                 retry: Optional[RetryPolicy] = None,
                 core: Optional[_MuxCore] = None):
        super().__init__()
        if core is None:
            if host is None or port is None:
                raise ValueError("MultiplexingChannel needs host/port or a core")
            core = _MuxCore(host, port, timeout=timeout, retry=retry)
            self._owns_core = True
        else:
            self._owns_core = False
        self._core = core
        self._client_id = client_id.encode("utf-8")
        self._timeout = timeout
        self._retry = retry
        self._nonce = int.from_bytes(os.urandom(8), "big")
        self._seq_lock = threading.Lock()
        self._next_seq = 0
        self._closed = False
        self.resends = 0
        metrics = get_registry()
        self._m_resends = metrics.counter(
            "transport.mux.resends",
            "in-flight frames re-sent after a per-request timeout or reconnect")
        self._m_retries = metrics.counter(
            "transport.retries", "requests retried after a transient fault")
        core.attach(self._fire_reconnect_listener)

    def _fire_reconnect_listener(self) -> None:
        if self.reconnect_listener is not None:
            self.reconnect_listener()

    def _submit(self, data: bytes) -> Tuple[Tuple[int, int], ReplyFuture, int]:
        if not isinstance(data, (bytes, bytearray)):
            raise TransportError("channels carry bytes only; serialize the message first")
        if self._closed:
            raise TransportError("channel is closed")
        with self._seq_lock:
            self._next_seq += 1
            seq = self._next_seq
        buffers = request_frame_buffers(self._client_id, self._nonce, seq,
                                        bytes(data))
        key = (self._nonce, seq)
        future = self._core.submit(buffers, key)
        return key, future, sum(len(b) for b in buffers) - 4

    def submit(self, data: bytes) -> ReplyFuture:
        """Queue a request and return its future without blocking."""
        _key, future, _sent = self._submit(data)
        return future

    def request(self, data: bytes) -> bytes:
        key, future, sent_bytes = self._submit(data)
        started = time.perf_counter()
        failures = 0
        while True:
            try:
                reply = future.result(timeout=self._timeout)
            except TransportTimeout:
                failure: TransportError = TransportTimeout(
                    f"no reply for seq {key[1]} within {self._timeout:g}s")
            except TransportError as exc:
                if not is_retryable(exc):
                    self._core.cancel(key)
                    raise
                failure = exc
            else:
                self._record_request(sent_bytes, len(reply),
                                     time.perf_counter() - started)
                return reply
            delay = self._retry.delay_for(failures) if self._retry else None
            if delay is None:
                self._core.cancel(key)
                if self._retry is not None and failures:
                    raise RetryExhausted(
                        f"request to {self._core.endpoint} failed after "
                        f"{failures + 1} attempts: {failure}") from failure
                raise failure
            failures += 1
            self._m_retries.inc()
            if delay > 0:
                time.sleep(delay)
            if self._closed:
                self._core.cancel(key)
                raise TransportError("channel is closed") from failure
            resent = self._core.resend(key)
            if resent is None:
                raise failure
            future = resent
            self.resends += 1
            self._m_resends.inc()

    def break_connection(self) -> None:
        """Sever the shared socket (fault-injection hook); affects every
        channel on this core, exactly like a real connection loss."""
        self._core.break_connection()

    def health(self) -> dict:
        state = super().health()
        state.update({
            "endpoint": self._core.endpoint,
            "connected": self._core.connected,
            "multiplexed": True,
            "owns_core": self._owns_core,
            "inflight": self._core.inflight,
            "reconnects": self._core.reconnects,
            "resends": self.resends,
            "orphan_replies": self._core.orphans,
            "last_error": self._core.last_error,
            "session_nonce": self._nonce,
            "next_seq": self._next_seq,
        })
        return state

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._core.detach(self._fire_reconnect_listener)
        if self._owns_core:
            self._core.close()


class MuxConnectionPool:
    """One multiplexed connection per server, shared by every client.

    ``connect(server, client_id)`` matches the
    ``InterWeaveClient(connector=...)`` signature: each call returns a
    new virtual :class:`MultiplexingChannel` (own nonce and sequence
    space) over the pool's single shared core for that server — so a
    process full of clients, their pollers, and a stats CLI all ride one
    socket per server instead of one socket per purpose.  Closing a
    virtual channel leaves the core up; :meth:`close` tears down every
    core.
    """

    def __init__(self, addresses: Optional[Dict[str, Tuple[str, int]]] = None,
                 timeout: float = 10.0, retry: Optional[RetryPolicy] = None):
        self._addresses: Dict[str, Tuple[str, int]] = dict(addresses or {})
        self._timeout = timeout
        self._retry = retry
        self._lock = threading.Lock()
        self._cores: Dict[str, _MuxCore] = {}

    def add_server(self, server: str, host: str, port: int) -> None:
        with self._lock:
            self._addresses[server] = (host, port)

    def _core_for(self, server: str) -> _MuxCore:
        with self._lock:
            core = self._cores.get(server)
            if core is None:
                address = self._addresses.get(server)
                if address is None:
                    raise TransportError(f"unknown server {server!r}")
                core = _MuxCore(address[0], address[1], timeout=self._timeout,
                                retry=self._retry)
                self._cores[server] = core
            return core

    def connect(self, server: str, client_id: str) -> MultiplexingChannel:
        return MultiplexingChannel(client_id=client_id, timeout=self._timeout,
                                   retry=self._retry,
                                   core=self._core_for(server))

    def health(self) -> dict:
        with self._lock:
            return {server: {
                "endpoint": core.endpoint,
                "connected": core.connected,
                "inflight": core.inflight,
                "reconnects": core.reconnects,
            } for server, core in self._cores.items()}

    def close(self) -> None:
        with self._lock:
            cores = list(self._cores.values())
            self._cores.clear()
        for core in cores:
            core.close()
