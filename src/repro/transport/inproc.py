"""In-process transport.

Connects clients and servers living in one Python process — the
configuration all the reproduction experiments use.  Although no socket is
involved, every request and reply is a fully serialized byte string
(channels refuse anything else), so measured bandwidth is exactly what a
socket would have carried.  It also supports server push, which the
adaptive polling/notification protocol uses.

An optional :class:`NetworkModel` + virtual clock pair simulates link
latency/bandwidth by advancing simulated time per message.

Pipelining: in-process dispatch is synchronous (the dispatcher runs in
the requesting thread), so the inherited :meth:`Channel.submit` — which
completes its future before returning — is already the right semantics;
there is no wire to keep busy.  Concurrency comes from calling threads,
exactly as with a real socket.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.errors import TransportError
from repro.transport.base import Channel, Dispatcher, NetworkModel, NotificationSink
from repro.util.clock import Clock


class InProcChannel(Channel):
    """A client's connection to an in-process server."""

    can_push = True

    def __init__(self, hub: "InProcHub", server_name: str, client_id: str):
        super().__init__()
        self._hub = hub
        self._server_name = server_name
        self._client_id = client_id
        self._notification_handler: Optional[Callable[[bytes], None]] = None
        self._closed = False

    def request(self, data: bytes) -> bytes:
        if self._closed:
            raise TransportError("channel is closed")
        if not isinstance(data, (bytes, bytearray)):
            raise TransportError("channels carry bytes only; serialize the message first")
        started = time.perf_counter()
        reply = self._hub.deliver(self._server_name, self._client_id, bytes(data))
        self._record_request(len(data), len(reply),
                             time.perf_counter() - started)
        return reply

    def set_notification_handler(self, handler: Callable[[bytes], None]) -> None:
        self._notification_handler = handler

    def _push(self, data: bytes) -> bool:
        if self._closed or self._notification_handler is None:
            return False
        self._record_push(len(data))
        self._notification_handler(data)
        return True

    def close(self) -> None:
        self._closed = True
        self._hub._drop_channel(self._client_id)


class InProcHub(NotificationSink):
    """A registry wiring client channels to named in-process servers.

    Also the servers' :class:`NotificationSink`: pushes are routed to the
    originating client's channel and run its notification handler inline.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 network: Optional[NetworkModel] = None):
        self._servers: Dict[str, Dispatcher] = {}
        self._channels: Dict[str, InProcChannel] = {}
        self._clock = clock
        self._network = network

    # -- server side -------------------------------------------------------------

    def register_server(self, name: str, dispatcher: Dispatcher) -> None:
        if name in self._servers:
            raise TransportError(f"server {name!r} already registered")
        self._servers[name] = dispatcher

    def push(self, client_id: str, data: bytes) -> bool:
        channel = self._channels.get(client_id)
        if channel is None:
            return False
        self._charge(len(data))
        return channel._push(data)

    # -- client side ---------------------------------------------------------------

    def connect(self, server_name: str, client_id: str) -> InProcChannel:
        if server_name not in self._servers:
            raise TransportError(f"no server named {server_name!r}")
        channel = InProcChannel(self, server_name, client_id)
        self._channels[client_id] = channel
        return channel

    # -- internals -------------------------------------------------------------------

    def deliver(self, server_name: str, client_id: str, data: bytes) -> bytes:
        # runs in the requesting client's thread: there is no server loop
        # in between, so the Dispatcher contract (thread-safe, never
        # raises) is what keeps concurrent in-process clients correct
        dispatcher = self._servers.get(server_name)
        if dispatcher is None:
            raise TransportError(f"no server named {server_name!r}")
        self._charge(len(data))
        reply = dispatcher.dispatch(client_id, data)
        if not isinstance(reply, (bytes, bytearray)):
            raise TransportError("dispatcher must return bytes")
        self._charge(len(reply))
        return bytes(reply)

    def _charge(self, nbytes: int) -> None:
        if self._network is not None and self._clock is not None:
            advance = getattr(self._clock, "advance", None)
            if advance is not None:
                advance(self._network.transfer_time(nbytes))

    def _drop_channel(self, client_id: str) -> None:
        self._channels.pop(client_id, None)
