"""TCP transport: length-prefixed frames over real sockets.

The wire protocol is trivially framed: every message (request or reply) is
a 4-byte big-endian length followed by that many payload bytes.  A request
frame is prefixed with the client id (so the server can attribute lock
state); replies carry the payload alone.

The server runs one thread per connection, which is plenty for the scale
of this reproduction and keeps the code obvious.  Push notifications are
not supported over this transport (``can_push = False``); clients fall
back to polling, exactly the degraded mode the paper's adaptive protocol
anticipates.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Optional

from repro.errors import TransportError, TransportTimeout
from repro.obs.metrics import get_registry
from repro.transport.base import Channel, Dispatcher

_LEN = struct.Struct(">I")
_MAX_FRAME = 1 << 30


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


class TCPChannel(Channel):
    """A client connection to a TCP server."""

    can_push = False

    def __init__(self, host: str, port: int, client_id: str, timeout: float = 10.0):
        super().__init__()
        self._client_id = client_id.encode("utf-8")
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"connect to {host}:{port} timed out after {timeout:g}s") from exc
        except OSError as exc:
            raise TransportError(
                f"connect to {host}:{port} failed: {exc}") from exc
        # the connect timeout also bounds every subsequent send and recv on
        # this socket; make that explicit rather than relying on
        # create_connection leaving it set
        self._sock.settimeout(timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._timeout = timeout
        self._lock = threading.Lock()

    def request(self, data: bytes) -> bytes:
        if not isinstance(data, (bytes, bytearray)):
            raise TransportError("channels carry bytes only; serialize the message first")
        frame = _LEN.pack(len(self._client_id)) + self._client_id + bytes(data)
        with self._lock:
            started = time.perf_counter()
            try:
                _send_frame(self._sock, frame)
                reply = _recv_frame(self._sock)
            except socket.timeout as exc:
                raise TransportTimeout(
                    f"TCP request timed out after {self._timeout:g}s") from exc
            except OSError as exc:
                raise TransportError(f"TCP request failed: {exc}") from exc
        if reply is None:
            raise TransportError("server closed the connection")
        self._record_request(len(frame), len(reply),
                             time.perf_counter() - started)
        return reply

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class TCPServerTransport:
    """Accepts connections and feeds requests to a :class:`Dispatcher`."""

    def __init__(self, dispatcher: Dispatcher, host: str = "127.0.0.1", port: int = 0):
        self._dispatcher = dispatcher
        metrics = get_registry()
        self._m_connections = metrics.counter(
            "transport.server.connections", "TCP connections accepted")
        self._m_requests = metrics.counter(
            "transport.server.requests", "frames dispatched by the TCP server")
        self._m_bytes_received = metrics.counter(
            "transport.server.bytes_received", "request frame bytes received")
        self._m_bytes_sent = metrics.counter(
            "transport.server.bytes_sent", "reply frame bytes sent")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self._running = True
        self._threads = []
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._m_connections.inc()
        try:
            while self._running:
                frame = _recv_frame(conn)
                if frame is None:
                    return
                (id_length,) = _LEN.unpack_from(frame, 0)
                client_id = frame[_LEN.size:_LEN.size + id_length].decode("utf-8")
                payload = frame[_LEN.size + id_length:]
                self._m_requests.inc()
                self._m_bytes_received.inc(len(frame))
                reply = self._dispatcher.dispatch(client_id, payload)
                self._m_bytes_sent.inc(len(reply))
                _send_frame(conn, reply)
        except (OSError, TransportError):
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
