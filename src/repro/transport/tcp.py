"""TCP transport: length-prefixed frames over real sockets.

The wire protocol is trivially framed: every message (request or reply)
is a 4-byte big-endian length followed by that many payload bytes.  A
request frame carries a header — client id, a random per-channel session
nonce, and a per-channel sequence number — ahead of the message payload
(so the server can attribute lock state and deduplicate retries without
confusing two channels that reuse a client id).  A reply frame echoes
the request's nonce and sequence number in a 16-byte header ahead of the
message, so replies can be matched to requests by sequence number rather
than by arrival order: many requests may be in flight on one socket and
replies may return out of order (see ``MultiplexingChannel`` in
``repro.transport.mux``).  The reserved pair ``(0, 0)`` marks a reply to
a frame whose header could not be parsed and is therefore unattributable.

The server runs one *reader* thread per connection, hands each decoded
frame to a shared dispatch pool, and funnels replies through a
per-connection *writer* thread, so a slow dispatch never blocks faster
replies on the same socket.  The writer coalesces replies that queue up
while a previous send is on the wire into a single ``sendmsg`` — small
frames batch naturally under load while a lone reply still goes out
immediately (``TCP_NODELAY`` stays set).  Push notifications are not
supported over this transport (``can_push = False``); clients fall back
to polling, exactly the degraded mode the paper's adaptive protocol
anticipates.

Fault tolerance (see ``docs/ROBUSTNESS.md``):

- a :class:`TCPChannel` given a :class:`~repro.transport.RetryPolicy`
  reconnects and re-sends after timeouts and disconnections, reusing the
  request's sequence number;
- the server answers malformed frames and dispatcher failures with an
  encoded ``ErrorReply`` and keeps the connection alive;
- a :class:`~repro.transport.ReplyCache` makes re-sent requests
  idempotent: a sequence number the server already processed is answered
  from the cache without re-dispatching, and a duplicate racing its
  original dispatch waits and shares the reply.
"""

from __future__ import annotations

import logging
import os
import queue
import socket
import struct
import threading
import time
from typing import Iterable, List, Optional, Tuple

from repro.errors import (
    RetryExhausted,
    TransportDisconnected,
    TransportError,
    TransportTimeout,
)
from repro.obs.metrics import get_registry
from repro.transport.base import Channel, Dispatcher, ReplyCache
from repro.transport.retry import RetryPolicy
from repro.wire.messages import ErrorReply, encode_message

_log = logging.getLogger("repro.transport.tcp")

_LEN = struct.Struct(">I")
_SEQ = struct.Struct(">Q")
_MAX_FRAME = 1 << 30
#: a reply payload leads with the echoed (nonce, seq) pair
_REPLY_HEADER = 2 * _SEQ.size
#: cap on reply frames coalesced into one sendmsg (keeps the iovec and
#: the latency of any single batch bounded; well under IOV_MAX)
_MAX_REPLY_BATCH = 32

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def _sendmsg_all(sock: socket.socket, buffers: Iterable[bytes]) -> None:
    """Send every buffer completely, without concatenating them first.

    ``sendmsg`` gathers the buffers into one syscall (and usually one
    TCP segment for small frames); a partial send resumes from the
    offset reached.  Falls back to per-buffer ``sendall`` where
    ``sendmsg`` is unavailable.
    """
    if not _HAS_SENDMSG:
        for buf in buffers:
            sock.sendall(buf)
        return
    views: List[memoryview] = [memoryview(b) for b in buffers if len(b)]
    while views:
        sent = sock.sendmsg(views)
        while views and sent >= len(views[0]):
            sent -= len(views[0])
            views.pop(0)
        if sent:
            views[0] = views[0][sent:]


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    _sendmsg_all(sock, (_LEN.pack(len(payload)), payload))


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


def split_reply_frame(frame: bytes) -> Tuple[int, int, bytes]:
    """Split a reply frame into ``(nonce, seq, message)``.

    Raises :class:`TransportError` if the frame is too short to carry
    the 16-byte reply header.
    """
    if len(frame) < _REPLY_HEADER:
        raise TransportError(
            f"reply frame of {len(frame)} bytes is shorter than its "
            f"{_REPLY_HEADER}-byte header")
    (nonce,) = _SEQ.unpack_from(frame, 0)
    (seq,) = _SEQ.unpack_from(frame, _SEQ.size)
    return nonce, seq, frame[_REPLY_HEADER:]


def request_frame_buffers(client_id: bytes, nonce: int, seq: int,
                          data: bytes) -> Tuple[bytes, bytes, bytes]:
    """Build the three wire buffers of a request frame.

    Returned as separate buffers (length prefix, header, payload) so the
    payload — often a large diff — is never copied into a joined frame;
    send with :func:`_sendmsg_all`.
    """
    header = (_LEN.pack(len(client_id)) + client_id
              + _SEQ.pack(nonce) + _SEQ.pack(seq))
    return _LEN.pack(len(header) + len(data)), header, data


class TCPChannel(Channel):
    """A client connection to a TCP server, one request at a time.

    With a :class:`RetryPolicy`, transient faults (timeouts, resets, a
    restarting server) trigger reconnection and an idempotent re-send;
    without one, they surface as typed transport errors and the broken
    connection is re-established lazily on the next request (never
    reused, since a timed-out exchange may leave a stale reply in
    flight).  For pipelined requests over one socket, see
    :class:`repro.transport.MultiplexingChannel`.
    """

    can_push = False

    def __init__(self, host: str, port: int, client_id: str, timeout: float = 10.0,
                 retry: Optional[RetryPolicy] = None):
        super().__init__()
        self._host = host
        self._port = port
        self._client_id = client_id.encode("utf-8")
        self._timeout = timeout
        self._retry = retry
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._ever_connected = False
        self._closed = False
        self._close_event = threading.Event()
        # random session nonce: keys the server's reply-cache session, so
        # a fresh channel reusing a client id never collides with the
        # previous channel's sequence space
        self._nonce = int.from_bytes(os.urandom(8), "big")
        self._next_seq = 0
        self.reconnects = 0
        self.retries = 0
        self.last_error: Optional[str] = None
        metrics = get_registry()
        self._m_retries = metrics.counter(
            "transport.retries", "requests retried after a transient fault")
        self._m_reconnects = metrics.counter(
            "transport.reconnects", "channel connections re-established")
        self._m_reconnect_seconds = metrics.histogram(
            "transport.reconnect_seconds",
            help="time spent re-establishing lost connections")
        self._connect()

    # -- connection management ------------------------------------------------

    def _connect(self) -> socket.socket:
        """(Re)establish the socket; raises typed, retryable errors."""
        started = time.perf_counter()
        try:
            sock = socket.create_connection((self._host, self._port),
                                            timeout=self._timeout)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"connect to {self._host}:{self._port} timed out after "
                f"{self._timeout:g}s") from exc
        except OSError as exc:
            raise TransportDisconnected(
                f"connect to {self._host}:{self._port} failed: {exc}") from exc
        sock.settimeout(self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        if self._ever_connected:
            self.reconnects += 1
            self._m_reconnects.inc()
            self._m_reconnect_seconds.observe(time.perf_counter() - started)
            if self.reconnect_listener is not None:
                self.reconnect_listener()
        self._ever_connected = True
        return sock

    def _break(self) -> None:
        """Abandon the connection: a failed exchange may have left an
        unread reply in flight, so the socket must never be reused.

        Deliberately lock-free (``request()`` holds ``self._lock`` for
        its whole retry loop): closing the socket out from under a
        blocked send/recv makes it fail with ``OSError``, which the
        retry loop turns into a typed error.
        """
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def break_connection(self) -> None:
        """Drop the connection (fault-injection hook); the channel
        reconnects on its next request.  Can sever an in-flight
        request from another thread."""
        self._break()

    # -- requests -------------------------------------------------------------

    def _match_reply(self, frame: bytes, seq: int) -> bytes:
        """Validate a reply frame's echoed (nonce, seq) header.

        With one request outstanding, the reply must carry this exact
        exchange's identity — or ``(0, 0)``, the server's marker for an
        answer to an unparseable frame.  Anything else means the stream
        is desynchronized (a stale reply from a previous exchange leaked
        through), which is unrecoverable on this socket.
        """
        nonce, r_seq, message = split_reply_frame(frame)
        if (nonce, r_seq) != (self._nonce, seq) and (nonce, r_seq) != (0, 0):
            raise TransportError(
                f"reply for (nonce={nonce:#x}, seq={r_seq}) arrived while "
                f"waiting for seq {seq}: reply stream desynchronized")
        return message

    def request(self, data: bytes) -> bytes:
        if not isinstance(data, (bytes, bytearray)):
            raise TransportError("channels carry bytes only; serialize the message first")
        with self._lock:
            if self._closed:
                raise TransportError("channel is closed")
            self._next_seq += 1
            seq = self._next_seq
            buffers = request_frame_buffers(
                self._client_id, self._nonce, seq, bytes(data))
            sent_bytes = sum(len(b) for b in buffers) - _LEN.size
            failures = 0
            while True:
                if self._closed:
                    raise TransportError("channel is closed")
                started = time.perf_counter()
                try:
                    sock = self._sock
                    if sock is None:
                        sock = self._connect()
                    _sendmsg_all(sock, buffers)
                    reply_frame = _recv_frame(sock)
                    if reply_frame is None:
                        raise TransportDisconnected("server closed the connection")
                    reply = self._match_reply(reply_frame, seq)
                except socket.timeout as exc:
                    error = TransportTimeout(
                        f"TCP request timed out after {self._timeout:g}s")
                    error.__cause__ = exc
                except (TransportTimeout, TransportDisconnected) as exc:
                    error = exc
                except OSError as exc:
                    error = TransportDisconnected(f"TCP request failed: {exc}")
                    error.__cause__ = exc
                except TransportError:
                    # protocol corruption (oversized frame, desynchronized
                    # reply stream): the stream is unrecoverable and a
                    # retry would re-read the same bytes
                    self._break()
                    raise
                else:
                    self._record_request(sent_bytes, len(reply_frame),
                                         time.perf_counter() - started)
                    return reply
                self._break()
                self.last_error = str(error)
                if self._closed:
                    raise TransportError("channel is closed") from error
                delay = self._retry.delay_for(failures) if self._retry else None
                if delay is None:
                    if self._retry is not None and failures:
                        raise RetryExhausted(
                            f"request to {self._host}:{self._port} failed after "
                            f"{failures + 1} attempts: {error}") from error
                    raise error
                failures += 1
                self.retries += 1
                self._m_retries.inc()
                # waiting on the close event (not time.sleep) lets a
                # concurrent close() abort the backoff immediately
                if delay > 0 and self._close_event.wait(delay):
                    raise TransportError("channel is closed") from error

    def health(self) -> dict:
        state = super().health()
        state.update({
            "endpoint": f"{self._host}:{self._port}",
            "connected": self._sock is not None,
            "reconnects": self.reconnects,
            "retries": self.retries,
            "last_error": self.last_error,
            "session_nonce": self._nonce,
            "next_seq": self._next_seq,
        })
        return state

    def close(self) -> None:
        # lock-free on purpose: request() holds self._lock across its
        # whole retry loop (backoff sleeps included), so close() must
        # interrupt from outside — the event aborts a pending backoff
        # and breaking the socket fails a blocked send/recv
        self._closed = True
        self._close_event.set()
        self._break()


class RequestFrameCore:
    """Shared request-frame decode/dispatch core for server transports.

    Both the thread-per-connection server below and the asyncio server
    (``repro.transport.aio``) speak the identical wire protocol and
    answer through the same :class:`ReplyCache`; this mixin keeps the
    header parsing, dedup, and error-answering semantics in one place so
    the two backends cannot drift.  Subclasses must set
    ``self._dispatcher`` and ``self.reply_cache`` before calling
    :meth:`_init_frame_metrics`.
    """

    def _init_frame_metrics(self) -> None:
        metrics = get_registry()
        self._m_connections = metrics.counter(
            "transport.server.connections", "TCP connections accepted")
        self._m_open = metrics.gauge(
            "transport.server.open_connections", "TCP connections currently open")
        self._m_requests = metrics.counter(
            "transport.server.requests", "frames dispatched by the TCP server")
        self._m_bytes_received = metrics.counter(
            "transport.server.bytes_received", "request frame bytes received")
        self._m_bytes_sent = metrics.counter(
            "transport.server.bytes_sent", "reply frame bytes sent")
        self._m_frame_errors = metrics.counter(
            "transport.server.frame_errors",
            "malformed frames answered with ErrorReply")
        self._m_dispatch_errors = metrics.counter(
            "transport.server.dispatch_errors",
            "dispatcher exceptions answered with ErrorReply")
        self._m_reply_batch = metrics.histogram(
            "transport.server.reply_batch_frames",
            help="reply frames coalesced into each sendmsg batch")
        self._m_reply_queue_wait = metrics.histogram(
            "transport.server.reply_queue_wait_seconds",
            help="time replies spent queued behind the per-connection writer")

    def _handle_frame(self, frame: bytes) -> Tuple[int, int, bytes]:
        """Decode one request frame, dispatch it, return (nonce, seq, reply).

        A malformed header (short client-id prefix, bad UTF-8, missing
        nonce or sequence number) or a dispatcher exception must not kill
        the connection: both are answered with an encoded ErrorReply so
        the client sees a typed failure and the connection survives.  A
        reply to an unparseable header carries the reserved ``(0, 0)``
        identity, since the request's own could not be read.
        """
        try:
            (id_length,) = _LEN.unpack_from(frame, 0)
            header_end = _LEN.size + id_length + 2 * _SEQ.size
            if header_end > len(frame):
                raise TransportError(
                    f"request header claims {id_length} id bytes but the "
                    f"frame holds {len(frame)}")
            client_id = frame[_LEN.size:_LEN.size + id_length].decode("utf-8")
            (nonce,) = _SEQ.unpack_from(frame, _LEN.size + id_length)
            (seq,) = _SEQ.unpack_from(frame, _LEN.size + id_length + _SEQ.size)
            payload = frame[header_end:]
        except (struct.error, UnicodeDecodeError, TransportError) as exc:
            self._m_frame_errors.inc()
            return 0, 0, encode_message(ErrorReply(f"malformed request frame: {exc}"))
        self._m_requests.inc()
        self._m_bytes_received.inc(len(frame))
        try:
            reply = self.reply_cache.execute(
                client_id, seq,
                lambda: self._dispatcher.dispatch(client_id, payload),
                nonce=nonce)
        except Exception as exc:  # noqa: BLE001 — any dispatcher bug
            self._m_dispatch_errors.inc()
            reply = encode_message(ErrorReply(f"request failed: {exc}"))
        self._m_bytes_sent.inc(len(reply))
        return nonce, seq, reply


class _DispatchPool:
    """A fixed pool of daemon worker threads with FIFO start order.

    FIFO matters for correctness, not just fairness: the reply cache's
    duplicate-coalescing waits on the original dispatch, and its
    no-deadlock argument requires that a duplicate never *starts* before
    its original has (see ``ReplyCache.execute``).  A plain FIFO queue
    drained by identical workers guarantees exactly that.

    Workers are daemon threads and ``close()`` does not join them: a
    dispatch wedged in a hung handler must not block server shutdown or
    interpreter exit.
    """

    def __init__(self, workers: int):
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-dispatch-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def submit(self, task) -> None:
        self._queue.put(task)

    def _worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                return
            try:
                task()
            except Exception:  # noqa: BLE001 — a task bug must not kill the worker
                _log.exception("dispatch task failed")

    def close(self) -> None:
        for _ in self._threads:
            self._queue.put(None)


class TCPServerTransport(RequestFrameCore):
    """Accepts connections and feeds requests to a :class:`Dispatcher`.

    One *reader* thread per connection decodes frames and submits them
    to a shared dispatch pool, so requests from one connection — a
    pipelined client has many in flight — dispatch concurrently, relying
    on the Dispatcher thread-safety contract.  Replies funnel through a
    per-connection *writer* thread: a slow dispatch never blocks faster
    replies on the same socket, and replies that queue up while a send
    is on the wire coalesce into one ``sendmsg`` batch.  Retried
    sequence numbers stay idempotent through the :class:`ReplyCache`,
    which also makes a duplicate racing its original dispatch wait and
    share the reply instead of re-dispatching.

    A shared :class:`ReplyCache` may be passed in so a restarted
    transport keeps deduplicating retries that straddle the restart;
    by default each transport owns a fresh cache.
    """

    def __init__(self, dispatcher: Dispatcher, host: str = "127.0.0.1",
                 port: int = 0, reply_cache: Optional[ReplyCache] = None,
                 dispatch_workers: int = 8, max_inflight: int = 64):
        self._dispatcher = dispatcher
        self.reply_cache = reply_cache if reply_cache is not None else ReplyCache()
        self._max_inflight = max_inflight
        self._init_frame_metrics()
        self._pool = _DispatchPool(dispatch_workers)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        # deep backlog: a reconnect storm after a failover (or the
        # connection-scale bench) arrives faster than threads spawn
        self._listener.listen(512)
        self.host, self.port = self._listener.getsockname()
        self._running = True
        self._threads = []
        self._conn_lock = threading.Lock()
        self._conns = set()
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with self._conn_lock:
                if not self._running:
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                self._conns.add(conn)
                self._m_open.set(len(self._conns))
            thread = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            with self._conn_lock:
                self._threads.append(thread)
            thread.start()

    def _serve(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # accepted sockets must carry SO_REUSEADDR themselves, or their
        # FIN_WAIT/TIME_WAIT remnants block a restarted transport from
        # rebinding the port while old clients are still attached
        conn.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._m_connections.inc()
        out_queue: "queue.Queue" = queue.Queue()
        writer = threading.Thread(
            target=self._write_loop, args=(conn, out_queue), daemon=True)
        writer.start()
        # bounds dispatches in flight for this connection: a client that
        # floods frames faster than the dispatcher drains them stalls in
        # the kernel send buffer instead of growing the queue unboundedly
        inflight = threading.BoundedSemaphore(self._max_inflight)
        try:
            while self._running:
                try:
                    frame = _recv_frame(conn)
                except TransportError:
                    return  # oversized frame: framing is lost, drop the link
                if frame is None:
                    return
                while not inflight.acquire(timeout=0.1):
                    if not self._running:
                        return
                self._pool.submit(
                    lambda f=frame: self._dispatch_to_queue(f, out_queue, inflight))
        except OSError:
            return
        finally:
            # replies still in flight when the reader exits are for a
            # client that is gone (or a transport shutting down): the
            # sentinel lets the writer drain what is already queued,
            # then closing the socket unblocks it if the peer stalled
            out_queue.put(None)
            writer.join(timeout=5.0)
            with self._conn_lock:
                self._conns.discard(conn)
                self._m_open.set(len(self._conns))
                # reap this connection's thread record as the connection
                # closes: a burst-then-idle workload must not pin the
                # peak thread-object list until the next accept
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:
                    pass  # already reaped by close()
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch_to_queue(self, frame: bytes, out_queue: "queue.Queue",
                           inflight: threading.BoundedSemaphore) -> None:
        """Pool task: dispatch one frame and queue its reply."""
        try:
            nonce, seq, reply = self._handle_frame(frame)
            out_queue.put((nonce, seq, reply, time.perf_counter()))
        finally:
            inflight.release()

    def _write_loop(self, conn: socket.socket, out_queue: "queue.Queue") -> None:
        """Per-connection writer: drain replies, batching opportunistically.

        Blocks for the first reply, then drains whatever else queued up
        (bounded by ``_MAX_REPLY_BATCH``) into one gathered ``sendmsg``.
        The "flush window" is thus the duration of the previous send: a
        lone reply goes out immediately with no added latency, while a
        backlog amortizes syscalls and wakeups.  Exits on the ``None``
        sentinel (after flushing replies queued ahead of it) or on a
        dead socket.
        """
        while True:
            item = out_queue.get()
            if item is None:
                return
            batch = [item]
            finished = False
            while len(batch) < _MAX_REPLY_BATCH:
                try:
                    nxt = out_queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is None:
                    finished = True
                    break
                batch.append(nxt)
            now = time.perf_counter()
            buffers = []
            for nonce, seq, reply, enqueued in batch:
                self._m_reply_queue_wait.observe(now - enqueued)
                buffers.append(_LEN.pack(_REPLY_HEADER + len(reply)))
                buffers.append(_SEQ.pack(nonce))
                buffers.append(_SEQ.pack(seq))
                buffers.append(reply)
            self._m_reply_batch.observe(len(batch))
            try:
                _sendmsg_all(conn, buffers)
            except OSError:
                return
            if finished:
                return

    def close(self) -> None:
        self._running = False
        # shutdown() wakes the thread blocked in accept(); close() alone
        # leaves the in-flight syscall holding the listening socket open,
        # which keeps the port bound after this method returns
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
            self._m_open.set(0)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=1.0)
        with self._conn_lock:
            threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout=1.0)
        self._pool.close()
