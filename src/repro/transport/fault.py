"""Deterministic fault injection for transports.

Wraps any :class:`~repro.transport.Channel` and, driven by a seeded RNG,
injects the faults a flaky network produces: requests dropped before
delivery, replies dropped after the server processed them, truncated
reply frames, injected latency, and connection drops.  Tests and
benchmarks use it to exercise the retry/reconnect machinery without real
packet loss; the same seed always yields the same fault schedule.

Fault semantics matter for idempotence:

- ``drop_request`` faults fire *before* the inner channel is touched —
  the server never saw the request, so a retry is always safe;
- ``drop_reply`` faults fire *after* the inner request returned — the
  server **did** process the request, so retrying is only safe through a
  transport with sequence-number deduplication (TCP) or for naturally
  idempotent requests;
- ``truncate_reply`` returns a garbled prefix, modelling a cut frame:
  the caller's decoder must fail cleanly (``WireFormatError``), which is
  fatal, not retryable;
- ``disconnect`` breaks the inner connection (via ``break_connection()``
  when the transport supports reconnection, else ``close()``) and raises
  :class:`~repro.errors.TransportDisconnected`.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

from repro.errors import TransportDisconnected, TransportTimeout
from repro.obs.metrics import get_registry
from repro.transport.base import Channel


class FaultPlan:
    """Probabilities (per request) and a seeded RNG for injected faults."""

    def __init__(self, seed: int = 0, drop_request: float = 0.0,
                 drop_reply: float = 0.0, truncate_reply: float = 0.0,
                 disconnect: float = 0.0, delay_probability: float = 0.0,
                 delay: float = 0.0):
        for name, probability in (("drop_request", drop_request),
                                  ("drop_reply", drop_reply),
                                  ("truncate_reply", truncate_reply),
                                  ("disconnect", disconnect),
                                  ("delay_probability", delay_probability)):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} must be a probability, got {probability}")
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.seed = seed
        self.drop_request = drop_request
        self.drop_reply = drop_reply
        self.truncate_reply = truncate_reply
        self.disconnect = disconnect
        self.delay_probability = delay_probability
        self.delay = delay
        self.rng = random.Random(seed)

    def __repr__(self):
        return (f"FaultPlan(seed={self.seed}, drop_request={self.drop_request}, "
                f"drop_reply={self.drop_reply}, truncate_reply={self.truncate_reply}, "
                f"disconnect={self.disconnect})")


class FaultInjectingChannel(Channel):
    """A channel wrapper that injects faults per a :class:`FaultPlan`.

    Byte accounting stays with the inner channel (``stats`` is aliased),
    so measured wire sizes are unchanged; the wrapper adds only
    ``fault.*`` counters recording what it injected.
    """

    def __init__(self, inner: Channel, plan: FaultPlan, clock=None):
        # _inner must exist before super().__init__(): the base class
        # assigns reconnect_listener, which delegates to the inner channel
        self._inner = inner
        super().__init__()
        self._plan = plan
        self._clock = clock
        self.stats = inner.stats  # the wrapper moves no bytes of its own
        metrics = get_registry()
        self._m_drops = metrics.counter(
            "fault.drops", "requests or replies dropped by the injector")
        self._m_truncations = metrics.counter(
            "fault.truncations", "replies truncated by the injector")
        self._m_disconnects = metrics.counter(
            "fault.disconnects", "connections broken by the injector")
        self._m_delays = metrics.counter(
            "fault.delays", "requests delayed by the injector")

    @property
    def can_push(self):  # type: ignore[override]
        return self._inner.can_push

    @property
    def reconnect_listener(self):  # type: ignore[override]
        """Delegated to the inner channel: it is the one that actually
        reconnects, while clients install their poller-reset callback on
        the outermost wrapper."""
        return self._inner.reconnect_listener

    @reconnect_listener.setter
    def reconnect_listener(self, callback: Optional[Callable[[], None]]) -> None:
        self._inner.reconnect_listener = callback

    def set_notification_handler(self, handler: Callable[[bytes], None]) -> None:
        self._inner.set_notification_handler(handler)

    def request(self, data: bytes) -> bytes:
        plan = self._plan
        rng = plan.rng
        if plan.disconnect and rng.random() < plan.disconnect:
            self._m_disconnects.inc()
            self._break_inner()
            raise TransportDisconnected("injected: connection dropped")
        if plan.delay_probability and rng.random() < plan.delay_probability:
            self._m_delays.inc()
            self._sleep(plan.delay)
        if plan.drop_request and rng.random() < plan.drop_request:
            self._m_drops.inc()
            raise TransportTimeout("injected: request dropped before delivery")
        reply = self._inner.request(data)
        if plan.drop_reply and rng.random() < plan.drop_reply:
            self._m_drops.inc()
            raise TransportTimeout("injected: reply dropped in flight")
        if (plan.truncate_reply and len(reply) > 1
                and rng.random() < plan.truncate_reply):
            self._m_truncations.inc()
            return reply[:rng.randrange(1, len(reply))]
        return reply

    def submit(self, data: bytes):
        """Pipelined submit with fault injection.

        A fault that would raise from :meth:`request` instead returns an
        already-failed future — modelling the waiter's eventual fate: a
        dropped request or reply never produces a matching reply frame,
        so the waiter would time out.  ``drop_reply`` still delivers the
        request to the inner channel first (the server *did* process
        it), which is what makes retry-dedup tests honest.  Truncation
        is not injected on this path (the reply bytes are owned by the
        inner channel's reader thread once submitted).
        """
        from repro.transport.base import ReplyFuture

        plan = self._plan
        rng = plan.rng
        if plan.disconnect and rng.random() < plan.disconnect:
            self._m_disconnects.inc()
            self._break_inner()
            failed = ReplyFuture()
            failed.fail(TransportDisconnected("injected: connection dropped"))
            return failed
        if plan.delay_probability and rng.random() < plan.delay_probability:
            self._m_delays.inc()
            self._sleep(plan.delay)
        if plan.drop_request and rng.random() < plan.drop_request:
            self._m_drops.inc()
            failed = ReplyFuture()
            failed.fail(TransportTimeout("injected: request dropped before delivery"))
            return failed
        future = self._inner.submit(data)
        if plan.drop_reply and rng.random() < plan.drop_reply:
            self._m_drops.inc()
            failed = ReplyFuture()
            failed.fail(TransportTimeout("injected: reply dropped in flight"))
            return failed
        return future

    def _break_inner(self) -> None:
        breaker: Optional[Callable[[], None]] = getattr(
            self._inner, "break_connection", None)
        if breaker is not None:
            breaker()
        else:
            self._inner.close()

    def _sleep(self, seconds: float) -> None:
        advance = getattr(self._clock, "advance", None)
        if advance is not None:
            advance(seconds)
        elif seconds > 0:
            time.sleep(seconds)

    def health(self) -> dict:
        state = self._inner.health()
        state["transport"] = f"FaultInjecting({state.get('transport', '?')})"
        return state

    def close(self) -> None:
        self._inner.close()
