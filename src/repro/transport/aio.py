"""Asyncio server transport: one event loop instead of threads-per-connection.

The thread-per-connection :class:`~repro.transport.tcp.TCPServerTransport`
spends two OS threads on every socket, which tops out at a few thousand
connections; this module holds the same wire protocol behind a single
event loop so one origin can keep tens of thousands of mostly-idle
clients attached (see ``benchmarks/bench_connscale.py`` for the
measured crossover).  :class:`AsyncTCPServerTransport` is a drop-in
behind the ``TCPServerTransport`` surface:

- **same wire protocol** — length-prefixed (nonce, seq) frames, no new
  tags; clients cannot tell the backends apart;
- **same dedup semantics** — requests run through the shared
  :class:`~repro.transport.ReplyCache` (a shared cache may be passed in
  so retries straddling a restart stay idempotent);
- **same dispatch contract** — frames are handed to the daemon-thread
  dispatch pool (the PR 3 Dispatcher thread-safety contract permits
  concurrent dispatch), and replies are marshalled back onto the loop
  with ``call_soon_threadsafe``;
- **same close() contract** — the listening port is released before
  ``close()`` returns and in-flight dispatches are drained into the
  reply cache.

Per connection the loop runs one *reader* task (decodes frames, bounded
by the same in-flight cap as the threaded backend) and one *writer*
task (coalesces queued replies into one gathered write, the
``sendmsg``-batching analogue).  Backpressure is explicit: the write
queue is bounded and a peer that stops reading long enough for a write
to stall past ``write_stall_timeout`` is dropped — one slow downstream
can cost itself its connection but can never block the loop.

On the same loop an optional minimal HTTP/1.1 JSON gateway (hand-rolled
parsing, stdlib only) exposes shared state to non-Python clients:
``GET /stats`` answers with the dispatcher's GetStats snapshot and
``GET /segments/{name}`` with a decoded segment image (origin servers
only).  See ``docs/GATEWAY.md``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from typing import Optional
from urllib.parse import unquote

from repro.obs.metrics import get_registry
from repro.transport.base import Dispatcher, ReplyCache
from repro.transport.tcp import (
    _LEN,
    _MAX_FRAME,
    _MAX_REPLY_BATCH,
    _REPLY_HEADER,
    _SEQ,
    RequestFrameCore,
    _DispatchPool,
)
from repro.wire.messages import (
    ErrorReply,
    GetStatsReply,
    GetStatsRequest,
    decode_message,
    encode_message,
)

#: how often the loop-lag probe samples its own scheduling delay
_LAG_INTERVAL = 0.1
#: largest HTTP request head (request line + headers) the gateway accepts
_GATEWAY_HEAD_LIMIT = 16 * 1024


class _AioConnection:
    """Per-connection state: streams, bounded write queue, in-flight cap."""

    __slots__ = ("reader", "writer", "queue", "inflight", "writer_task",
                 "serve_task", "dropped")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 queue_frames: int, max_inflight: int):
        self.reader = reader
        self.writer = writer
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_frames)
        self.inflight = asyncio.Semaphore(max_inflight)
        self.writer_task: Optional[asyncio.Task] = None
        self.serve_task: Optional[asyncio.Task] = None
        self.dropped = False


class AsyncTCPServerTransport(RequestFrameCore):
    """Accepts connections on one event loop and feeds a :class:`Dispatcher`.

    The event loop runs in a dedicated daemon thread; the constructor
    binds the listening socket synchronously, so ``host``/``port`` are
    available immediately and a ``port=0`` caller learns the chosen
    port exactly as with the threaded transport.  ``gateway_port``
    (``None`` = disabled, ``0`` = ephemeral) additionally mounts the
    HTTP/1.1 JSON gateway on the same loop; the chosen port is exposed
    as ``gateway_port`` after construction.
    """

    def __init__(self, dispatcher: Dispatcher, host: str = "127.0.0.1",
                 port: int = 0, reply_cache: Optional[ReplyCache] = None,
                 dispatch_workers: int = 8, max_inflight: int = 64,
                 write_queue_frames: int = 256,
                 write_stall_timeout: float = 5.0,
                 gateway_port: Optional[int] = None):
        self._dispatcher = dispatcher
        self.reply_cache = reply_cache if reply_cache is not None else ReplyCache()
        self._max_inflight = max_inflight
        self._write_queue_frames = max(write_queue_frames, max_inflight)
        self._write_stall_timeout = write_stall_timeout
        self._init_frame_metrics()
        metrics = get_registry()
        self._m_conn_gauge = metrics.gauge(
            "server.connections",
            "connections currently attached to the asyncio server core")
        self._m_loop_lag = metrics.histogram(
            "server.loop_lag_seconds",
            help="event-loop scheduling delay sampled by a periodic probe")
        self._m_gateway_requests = metrics.counter(
            "gateway.requests", "HTTP requests answered by the JSON gateway")
        self._m_slow_drops = metrics.counter(
            "transport.server.slow_reader_drops",
            "connections dropped because the peer stopped reading replies")
        self._pool = _DispatchPool(dispatch_workers)
        self._dispatch_lock = threading.Lock()
        self._dispatch_inflight = 0
        self._dispatch_idle = threading.Event()
        self._dispatch_idle.set()
        self._listen_sock = self._bind(host, port)
        self.host, self.port = self._listen_sock.getsockname()
        self.gateway_host: Optional[str] = None
        self.gateway_port: Optional[int] = None
        self._gw_sock: Optional[socket.socket] = None
        if gateway_port is not None:
            self._gw_sock = self._bind(host, gateway_port)
            self.gateway_host, self.gateway_port = self._gw_sock.getsockname()
        self._running = True
        self._conns: "set[_AioConnection]" = set()
        self._gw_writers: "set[asyncio.StreamWriter]" = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._gw_server: Optional[asyncio.AbstractServer] = None
        self._lag_task: Optional[asyncio.Task] = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aio-loop", daemon=True)
        self._thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                self._start(), self._loop).result(timeout=10.0)
        except Exception:
            self.close()
            raise

    @staticmethod
    def _bind(host: str, port: int) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(512)
        except OSError:
            sock.close()
            raise
        return sock

    # -- event loop lifecycle -------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            try:
                tasks = asyncio.all_tasks(self._loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    self._loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True))
                self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            finally:
                self._loop.close()

    async def _start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, sock=self._listen_sock)
        if self._gw_sock is not None:
            self._gw_server = await asyncio.start_server(
                self._on_gateway_connection, sock=self._gw_sock)
        self._lag_task = self._loop.create_task(self._lag_monitor())

    async def _lag_monitor(self) -> None:
        """Sample how late the loop wakes from a fixed-interval sleep.

        The delay beyond the requested interval is exactly the time the
        loop spent unable to schedule new work — the single number that
        tells an operator the loop (not the dispatch pool) is the
        bottleneck.
        """
        while self._running:
            target = self._loop.time() + _LAG_INTERVAL
            await asyncio.sleep(_LAG_INTERVAL)
            self._m_loop_lag.observe(max(0.0, self._loop.time() - target))

    # -- binary protocol ------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        if not self._running:
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                # accepted sockets must carry SO_REUSEADDR themselves, or
                # their TIME_WAIT remnants block a restarted transport
                # from rebinding the port (same as the threaded backend)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            except OSError:
                pass
        conn = _AioConnection(reader, writer,
                              self._write_queue_frames, self._max_inflight)
        conn.serve_task = asyncio.current_task()
        self._conns.add(conn)
        self._m_connections.inc()
        self._m_open.set(len(self._conns))
        self._m_conn_gauge.set(len(self._conns))
        conn.writer_task = self._loop.create_task(self._write_loop(conn))
        try:
            await self._read_loop(conn)
        finally:
            # replies still in flight when the reader exits are for a
            # client that is gone (or a transport shutting down): the
            # sentinel lets the writer drain what is already queued
            self._put_sentinel(conn)
            try:
                await asyncio.wait_for(
                    asyncio.shield(conn.writer_task), timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError, Exception):
                conn.writer_task.cancel()
            self._conns.discard(conn)
            self._m_open.set(len(self._conns))
            self._m_conn_gauge.set(len(self._conns))
            self._close_writer(writer)

    async def _read_loop(self, conn: _AioConnection) -> None:
        reader = conn.reader
        while self._running and not conn.dropped:
            try:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                if length > _MAX_FRAME:
                    return  # framing is lost, drop the link
                frame = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            # bounds dispatches in flight for this connection: a client
            # that floods frames faster than the dispatcher drains them
            # stalls in the kernel receive path instead of growing the
            # pool queue unboundedly
            await conn.inflight.acquire()
            if not self._running or conn.dropped:
                return
            with self._dispatch_lock:
                self._dispatch_inflight += 1
                self._dispatch_idle.clear()
            self._pool.submit(
                lambda f=frame, c=conn: self._dispatch_to_loop(c, f))

    def _dispatch_to_loop(self, conn: _AioConnection, frame: bytes) -> None:
        """Pool task (dispatch thread): handle one frame, marshal the
        reply back onto the event loop."""
        try:
            item = self._handle_frame(frame) + (time.perf_counter(),)
            try:
                self._loop.call_soon_threadsafe(self._deliver, conn, item)
            except RuntimeError:
                pass  # loop already closed; the reply is in the cache
        finally:
            with self._dispatch_lock:
                self._dispatch_inflight -= 1
                if self._dispatch_inflight == 0:
                    self._dispatch_idle.set()

    def _deliver(self, conn: _AioConnection, item) -> None:
        """Loop callback: release the in-flight slot and queue the reply."""
        conn.inflight.release()
        if conn.dropped:
            return
        try:
            conn.queue.put_nowait(item)
        except asyncio.QueueFull:
            # the writer has been wedged long enough for a full in-flight
            # window to pile up behind it: treat as a slow reader
            self._drop_slow(conn)

    def _put_sentinel(self, conn: _AioConnection) -> None:
        try:
            conn.queue.put_nowait(None)
        except asyncio.QueueFull:
            conn.writer_task.cancel()

    def _drop_slow(self, conn: _AioConnection) -> None:
        if conn.dropped:
            return
        conn.dropped = True
        self._m_slow_drops.inc()
        transport = conn.writer.transport
        if transport is not None:
            transport.abort()  # discards buffered bytes, fails the reader

    async def _write_loop(self, conn: _AioConnection) -> None:
        """Per-connection writer: drain replies, batching opportunistically.

        Mirrors the threaded backend's writer: block for the first
        reply, then gather whatever else queued up (bounded by
        ``_MAX_REPLY_BATCH``) into one ``writelines``.  ``drain()``
        bounded by ``write_stall_timeout`` is the slow-reader guard: a
        peer that stops reading long enough for the send buffer to stay
        full past the deadline is dropped, not waited on.
        """
        queue = conn.queue
        writer = conn.writer
        while True:
            item = await queue.get()
            if item is None:
                return
            batch = [item]
            finished = False
            while len(batch) < _MAX_REPLY_BATCH:
                try:
                    nxt = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    finished = True
                    break
                batch.append(nxt)
            now = time.perf_counter()
            buffers = []
            for nonce, seq, reply, enqueued in batch:
                self._m_reply_queue_wait.observe(now - enqueued)
                buffers.append(_LEN.pack(_REPLY_HEADER + len(reply)))
                buffers.append(_SEQ.pack(nonce))
                buffers.append(_SEQ.pack(seq))
                buffers.append(reply)
            self._m_reply_batch.observe(len(batch))
            try:
                writer.writelines(buffers)
                await asyncio.wait_for(writer.drain(),
                                       timeout=self._write_stall_timeout)
            except asyncio.TimeoutError:
                self._drop_slow(conn)
                return
            except (ConnectionError, OSError):
                return
            if finished:
                return

    # -- HTTP/1.1 JSON gateway ------------------------------------------------

    async def _on_gateway_connection(self, reader: asyncio.StreamReader,
                                     writer: asyncio.StreamWriter) -> None:
        self._gw_writers.add(writer)
        try:
            while self._running:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), timeout=30.0)
                except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                        ConnectionError, OSError):
                    return
                except asyncio.LimitOverrunError:
                    await self._gateway_respond(
                        writer, 431, {"error": "request head too large"})
                    return
                if len(head) > _GATEWAY_HEAD_LIMIT:
                    await self._gateway_respond(
                        writer, 431, {"error": "request head too large"})
                    return
                keep_alive = await self._gateway_handle(writer, head)
                if not keep_alive:
                    return
        finally:
            self._gw_writers.discard(writer)
            self._close_writer(writer)

    async def _gateway_handle(self, writer: asyncio.StreamWriter,
                              head: bytes) -> bool:
        """Parse one request head, route it, write the response.

        Returns whether the connection should stay open (HTTP/1.1
        keep-alive unless the client asked to close).  Requests with
        bodies are rejected — the gateway is read-only, so nothing ever
        needs to consume an entity body.
        """
        self._m_gateway_requests.inc()
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            await self._gateway_respond(
                writer, 400, {"error": "malformed request line"}, close=True)
            return False
        headers = {}
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        keep_alive = (version.upper() != "HTTP/1.0"
                      and headers.get("connection", "").lower() != "close")
        has_body = (headers.get("content-length", "0") not in ("", "0")
                    or "chunked" in headers.get("transfer-encoding", "").lower())
        if method.upper() != "GET":
            # answer 405 before the body complaint — but a body we will
            # not read means the connection cannot be reused
            await self._gateway_respond(
                writer, 405, {"error": f"method {method} not allowed"},
                keep_alive=keep_alive and not has_body,
                close=has_body)
            return keep_alive and not has_body
        if has_body:
            await self._gateway_respond(
                writer, 400, {"error": "request bodies are not accepted"},
                close=True)
            return False
        path = target.split("?", 1)[0]
        try:
            if path == "/stats":
                status, body = await self._gateway_stats()
            elif path.startswith("/segments/") and len(path) > len("/segments/"):
                name = unquote(path[len("/segments/"):])
                status, body = await self._gateway_segment(name)
            else:
                status, body = 404, {"error": f"no route for {path}"}
        except Exception as exc:  # noqa: BLE001 — a handler bug must answer
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        await self._gateway_respond(writer, status, body, keep_alive=keep_alive)
        return keep_alive

    async def _gateway_stats(self):
        """Mirror GetStats by dispatching the real request: every role
        (server, proxy, directory) answers it, so the gateway works
        wherever the transport is mounted."""
        payload = encode_message(GetStatsRequest("gateway"))
        reply = decode_message(await self._run_on_pool(
            lambda: self._dispatcher.dispatch("gateway", payload)))
        if isinstance(reply, GetStatsReply):
            return 200, reply.payload
        return 502, {"error": getattr(reply, "message", str(reply))}

    async def _gateway_segment(self, name: str):
        read_segment = getattr(self._dispatcher, "read_segment_json", None)
        if read_segment is None:
            return 501, {"error": "segment reads require an origin server "
                                  "(this endpoint serves stats only)"}
        from repro.errors import ServerError

        try:
            snapshot = await self._run_on_pool(lambda: read_segment(name))
        except ServerError as exc:
            return 404, {"error": str(exc)}
        return 200, snapshot

    async def _run_on_pool(self, func):
        """Run blocking work on the dispatch pool, await the result.

        The pool's daemon FIFO workers are reused instead of a
        ``ThreadPoolExecutor`` so a wedged handler can never block
        interpreter exit (executor threads are joined at shutdown)."""
        future = self._loop.create_future()

        def task():
            try:
                result = func()
            except BaseException as exc:  # noqa: BLE001 — marshal, don't lose
                self._loop.call_soon_threadsafe(self._resolve, future, None, exc)
            else:
                self._loop.call_soon_threadsafe(self._resolve, future, result, None)

        self._pool.submit(task)
        return await future

    @staticmethod
    def _resolve(future: "asyncio.Future", result, error) -> None:
        if future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    async def _gateway_respond(self, writer: asyncio.StreamWriter, status: int,
                               body, keep_alive: bool = True,
                               close: bool = False) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 431: "Request Header Fields Too Large",
                   500: "Internal Server Error", 501: "Not Implemented",
                   502: "Bad Gateway"}
        if isinstance(body, str):
            payload = body.encode("utf-8")
        else:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
        connection = "close" if (close or not keep_alive) else "keep-alive"
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        try:
            writer.write(head.encode("latin-1") + payload)
            await asyncio.wait_for(writer.drain(),
                                   timeout=self._write_stall_timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass

    # -- introspection (tests, stats) -----------------------------------------

    def connection_count(self) -> int:
        """Connections currently attached (binary protocol only)."""
        return len(self._conns)

    def task_count(self) -> int:
        """Tasks alive on the loop (readers, writers, servers, probes)."""
        if not self._loop.is_running():
            return 0
        future = asyncio.run_coroutine_threadsafe(self._count_tasks(), self._loop)
        return future.result(timeout=5.0)

    async def _count_tasks(self) -> int:
        return len(asyncio.all_tasks(self._loop))

    # -- shutdown -------------------------------------------------------------

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
        if self._gw_server is not None:
            self._gw_server.close()
        if self._lag_task is not None:
            self._lag_task.cancel()
        # mirror the threaded close(): force connections closed (their
        # readers fail, their writers see the sentinel or a dead socket)
        # rather than waiting for queued replies to clients that will
        # never be answered
        for conn in list(self._conns):
            conn.dropped = True
            transport = conn.writer.transport
            if transport is not None:
                transport.abort()
        for writer in list(self._gw_writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        serve_tasks = [conn.serve_task for conn in list(self._conns)
                       if conn.serve_task is not None]
        if serve_tasks:
            await asyncio.wait(serve_tasks, timeout=3.0)
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
            except asyncio.TimeoutError:
                pass

    def close(self) -> None:
        self._running = False
        if self._loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown(), self._loop).result(timeout=10.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        # drain in-flight dispatches, bounded exactly like the threaded
        # backend's per-thread join: a handler wedged past the timeout
        # must not block shutdown or interpreter exit
        self._dispatch_idle.wait(timeout=1.0)
        self._thread.join(timeout=5.0)
        # belt and braces: if the loop wedged before closing its servers,
        # closing the raw sockets here still releases the ports
        # synchronously (socket.close() is idempotent)
        for sock in (self._listen_sock, self._gw_sock):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._conns.clear()
        self._m_open.set(0)
        self._m_conn_gauge.set(0)
        self._pool.close()
