"""Retry policy and a generic retrying channel wrapper.

Transient transport faults (timeouts, resets, a server restarting) are
part of normal operation for a distributed shared-state system; the
paper's adaptive protocol already plans for degraded modes, and this
module supplies the client half of fault tolerance:

- :class:`RetryPolicy` — a typed classification of retryable vs. fatal
  errors plus an exponential-backoff-with-jitter schedule (seeded, so
  tests and simulations are deterministic);
- :class:`RetryingChannel` — wraps any :class:`~repro.transport.Channel`
  factory and transparently reconnects/retries requests that fail with a
  retryable error.

Retrying a request is only safe if re-delivery is idempotent.  The TCP
transport guarantees that with per-client sequence numbers and a
server-side reply cache (see ``repro.transport.tcp``); in-process
channels never duplicate delivery, so with them :class:`RetryingChannel`
is safe for faults injected *before* the request reaches the dispatcher
(see ``repro.transport.fault``).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

from repro.errors import (
    RetryExhausted,
    TransportDisconnected,
    TransportError,
    TransportTimeout,
)
from repro.obs.metrics import get_registry
from repro.transport.base import Channel

#: Error types a retry may safely follow (given idempotent re-delivery).
RETRYABLE_ERRORS = (TransportTimeout, TransportDisconnected)


def is_retryable(error: BaseException) -> bool:
    """Typed classification: may this failure be retried?

    Timeouts and disconnections are transient — the server may be slow,
    restarting, or the link flaky.  Everything else (wire-format
    corruption, server rejections, programming errors) is fatal: a retry
    would re-send the same poison.
    """
    return isinstance(error, RETRYABLE_ERRORS)


class RetryPolicy:
    """Exponential backoff with jitter over a bounded attempt budget.

    ``max_attempts`` counts total tries (first send included), so
    ``max_attempts=1`` disables retry.  Delays grow geometrically from
    ``base_delay`` by ``multiplier``, capped at ``max_delay``, and are
    scaled by a uniform ``±jitter`` fraction drawn from a seeded RNG so
    two policies built with the same seed produce identical schedules.
    """

    def __init__(self, max_attempts: int = 5, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 jitter: float = 0.1, seed: Optional[int] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = random.Random(seed)

    is_retryable = staticmethod(is_retryable)

    def delay_for(self, failures: int) -> Optional[float]:
        """Backoff before the next try, or None when the budget is spent.

        ``failures`` is the number of attempts that have already failed
        (0 after the first failure).
        """
        if failures + 1 >= self.max_attempts:
            return None
        delay = min(self.max_delay, self.base_delay * self.multiplier ** failures)
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)

    def __repr__(self):
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base_delay={self.base_delay}, max_delay={self.max_delay})")


class RetryingChannel(Channel):
    """Reconnect-and-retry wrapper around a channel factory.

    On a retryable failure the inner channel is closed, the policy's
    backoff is slept (or advanced on a virtual clock), a fresh channel is
    obtained from the factory, and the request is re-sent.  Fatal errors
    and an exhausted budget propagate — the latter as
    :class:`~repro.errors.RetryExhausted` chaining the last failure.

    Byte/request accounting lives in the inner channel (``stats`` is a
    read-through property), so the wrapper adds no double counting.
    """

    def __init__(self, factory: Callable[[], Channel], policy: RetryPolicy,
                 clock=None):
        # deliberately no super().__init__(): stats delegate to the inner
        # channel, and the wrapper keeps only retry/reconnect instruments
        self._factory = factory
        self._policy = policy
        self._clock = clock
        self._handler = None
        self._listener: Optional[Callable[[], None]] = None
        self.retries = 0
        self.reconnects = 0
        metrics = get_registry()
        self._m_retries = metrics.counter(
            "transport.retries", "requests retried after a transient fault")
        self._m_reconnects = metrics.counter(
            "transport.reconnects", "channel connections re-established")
        self._inner = factory()
        self._broken = False

    @property
    def can_push(self):  # type: ignore[override]
        return self._inner.can_push

    @property
    def stats(self):
        return self._inner.stats

    @property
    def reconnect_listener(self) -> Optional[Callable[[], None]]:
        """The poller-reset callback; installing it on the wrapper also
        installs it on the inner channel, so a transport that reconnects
        internally (TCP with its own retry policy) still fires it."""
        return self._listener

    @reconnect_listener.setter
    def reconnect_listener(self, callback: Optional[Callable[[], None]]) -> None:
        self._listener = callback
        self._inner.reconnect_listener = callback

    def set_notification_handler(self, handler) -> None:
        self._handler = handler
        self._inner.set_notification_handler(handler)

    def submit(self, data: bytes):
        """Pipelined submits delegate to the inner channel unretried.

        A future-based retry loop would have to block on each future to
        observe its failure, defeating the pipelining; channels that
        retry internally (TCP or multiplexing channels built with a
        :class:`RetryPolicy`) give pipelined submits fault tolerance,
        while this wrapper's own loop protects :meth:`request` callers.
        After a reconnect, a multiplexed inner channel re-sends only the
        unacknowledged in-flight window, and the server's
        :class:`~repro.transport.ReplyCache` deduplicates any request
        that was actually processed (see ``docs/ROBUSTNESS.md``).
        """
        return self._inner.submit(data)

    def request(self, data: bytes) -> bytes:
        failures = 0
        while True:
            try:
                if self._broken:
                    # inside the try: the factory's own connect can fail
                    # with a retryable error (server still down), which
                    # must consume a retry and back off, not propagate
                    self._reopen()
                return self._inner.request(data)
            except TransportError as error:
                if not is_retryable(error):
                    raise
                self._broken = True
                delay = self._policy.delay_for(failures)
                if delay is None:
                    raise RetryExhausted(
                        f"request failed after {failures + 1} attempts: "
                        f"{error}") from error
                failures += 1
                self.retries += 1
                self._m_retries.inc()
                self._sleep(delay)

    def _reopen(self) -> None:
        try:
            self._inner.close()
        except TransportError:
            pass
        self._inner = self._factory()
        self._broken = False
        self._inner.reconnect_listener = self._listener
        if self._handler is not None and self._inner.can_push:
            self._inner.set_notification_handler(self._handler)
        self.reconnects += 1
        self._m_reconnects.inc()
        if self._listener is not None:
            self._listener()

    def _sleep(self, seconds: float) -> None:
        advance = getattr(self._clock, "advance", None)
        if advance is not None:
            advance(seconds)
        elif seconds > 0:
            time.sleep(seconds)

    def health(self) -> dict:
        state = self._inner.health()
        state.update({
            "transport": f"Retrying({state.get('transport', '?')})",
            "retries": self.retries,
            "reconnects": self.reconnects,
        })
        return state

    def close(self) -> None:
        self._inner.close()
