"""Transport abstractions.

A :class:`Channel` carries one client's requests to one server and returns
replies; bytes in, bytes out.  Whatever the concrete transport (in-process
or TCP), **every message crosses a real serialization boundary**, so the
byte counts recorded in :class:`TransportStats` are genuine wire sizes —
the numbers Figure 7 of the paper is about.

Server-initiated traffic (the notification half of the adaptive
polling/notification protocol) flows through a :class:`NotificationSink`;
transports that cannot push (plain request/reply TCP here) simply report
``can_push = False`` and clients fall back to polling.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

_log = logging.getLogger(__name__)

from repro.errors import TransportTimeout, WireFormatError
from repro.obs.metrics import get_registry


class ReplyFuture:
    """Completion handle for one pipelined request.

    Returned by :meth:`Channel.submit`.  ``result()`` blocks until the
    reply arrives (or the request fails) and then returns the reply
    bytes or raises the typed transport error — the same contract as
    :meth:`Channel.request`, deferred.
    """

    __slots__ = ("_event", "_reply", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._reply: Optional[bytes] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, reply: bytes) -> None:
        self._reply = reply
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> bytes:
        if not self._event.wait(timeout):
            raise TransportTimeout(
                f"no reply within {timeout:g}s" if timeout is not None
                else "no reply")
        if self._error is not None:
            raise self._error
        return self._reply


class TransportStats:
    """Byte and message accounting for one channel (or one server)."""

    __slots__ = ("bytes_sent", "bytes_received", "requests", "notifications")

    def __init__(self):
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0
        self.notifications = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0
        self.notifications = 0

    def __repr__(self):
        return (f"TransportStats(sent={self.bytes_sent}, received={self.bytes_received}, "
                f"requests={self.requests})")


class Channel:
    """A request/reply pipe from one client to one server."""

    #: whether the server can push notifications back over this transport
    can_push = False

    def __init__(self):
        self.stats = TransportStats()
        #: invoked (with no arguments) after the channel re-establishes a
        #: lost connection; clients use it to reset per-segment polling
        #: state, since notifications may have been missed while down
        self.reconnect_listener: Optional[Callable[[], None]] = None
        metrics = get_registry()
        self._m_bytes_sent = metrics.counter(
            "transport.bytes_sent", "request bytes sent by client channels")
        self._m_bytes_received = metrics.counter(
            "transport.bytes_received", "reply/push bytes received by channels")
        self._m_requests = metrics.counter(
            "transport.requests", "request/reply round trips")
        self._m_notifications = metrics.counter(
            "transport.notifications", "server pushes delivered to channels")
        self._m_rtt = metrics.histogram(
            "transport.request_seconds", help="request round-trip latency")

    def _record_request(self, sent: int, received: int,
                        seconds: Optional[float] = None) -> None:
        """Account one round trip in the channel's stats and the registry."""
        self.stats.requests += 1
        self.stats.bytes_sent += sent
        self.stats.bytes_received += received
        self._m_requests.inc()
        self._m_bytes_sent.inc(sent)
        self._m_bytes_received.inc(received)
        if seconds is not None:
            self._m_rtt.observe(seconds)

    def _record_push(self, received: int) -> None:
        """Account one server push delivered over this channel."""
        self.stats.notifications += 1
        self.stats.bytes_received += received
        self._m_notifications.inc()
        self._m_bytes_received.inc(received)

    def request(self, data: bytes) -> bytes:
        raise NotImplementedError

    def submit(self, data: bytes) -> ReplyFuture:
        """Start one request and return a :class:`ReplyFuture` for it.

        Pipelining hook: transports that can keep several requests in
        flight on one connection (:class:`~repro.transport.mux.MultiplexingChannel`)
        override this to return before the reply arrives.  The default
        completes synchronously via :meth:`request`, so every channel —
        in-process, serial TCP, wrappers — accepts pipelined callers
        with unchanged semantics (depth 1).
        """
        future = ReplyFuture()
        try:
            future.resolve(self.request(data))
        except Exception as exc:  # noqa: BLE001 — deliver through the future
            future.fail(exc)
        return future

    def set_notification_handler(self, handler: Callable[[bytes], None]) -> None:
        """Install the callback for pushed messages (push transports only)."""
        raise NotImplementedError(f"{type(self).__name__} cannot push")

    def health(self) -> dict:
        """A point-in-time introspection snapshot of this channel.

        Transports extend the base dict with their own fields (broken
        flag, reconnect counts, endpoint); ``client.session_state()``
        surfaces it per server.
        """
        return {
            "transport": type(self).__name__,
            "can_push": self.can_push,
            "requests": self.stats.requests,
            "notifications": self.stats.notifications,
            "bytes_sent": self.stats.bytes_sent,
            "bytes_received": self.stats.bytes_received,
        }

    def close(self) -> None:
        pass


class NotificationSink:
    """Server-side interface for pushing a message to a connected client."""

    def push(self, client_id: str, data: bytes) -> bool:
        """Deliver ``data`` to ``client_id``; False if unreachable."""
        raise NotImplementedError


class NullSink(NotificationSink):
    """A sink for deployments with no push path: drops everything."""

    def push(self, client_id: str, data: bytes) -> bool:
        return False


class Dispatcher:
    """Server-side interface: handle one encoded request, return the reply.

    Contract: ``dispatch`` must be thread-safe and must always return an
    encoded reply — transports call it concurrently (the TCP server runs
    one thread per connection, and several in-process clients may share a
    hub from different threads), and a raised exception would tear down
    the calling connection (TCP) or leak straight into the client's
    ``request()`` call (in-process) instead of producing a typed
    ``ErrorReply``.  Implementations answer malformed or unprocessable
    requests with an encoded ``ErrorReply`` rather than raising.
    """

    def dispatch(self, client_id: str, data: bytes) -> bytes:
        raise NotImplementedError


class _ReplySession:
    """One client channel's request-deduplication state.

    ``replies`` retains the last ``window`` dispatched replies (keyed by
    sequence number), ``pending`` tracks dispatches currently running,
    and ``horizon`` is the highest sequence number ever evicted from
    ``replies`` — anything at or below it may have been forgotten, so a
    repeat is rejected as stale rather than silently re-dispatched.
    """

    __slots__ = ("lock", "replies", "pending", "horizon", "last_seq")

    def __init__(self):
        self.lock = threading.Lock()
        self.replies: "OrderedDict[int, bytes]" = OrderedDict()
        self.pending: Dict[int, threading.Event] = {}
        self.horizon = 0
        self.last_seq = 0

    def busy(self) -> bool:
        """Is a dispatch for this session running right now?"""
        return bool(self.pending) or self.lock.locked()


class ReplyCache:
    """Per-client reply window: at-most-once dispatch under retries.

    Clients stamp every request with a monotonically increasing sequence
    number and reuse the number when they retry.  The cache remembers,
    per session, the replies to the last ``window`` sequence numbers, so
    a retry of an already-processed request (reply lost in flight,
    timeout after the server finished) returns the cached reply instead
    of re-executing a non-idempotent operation such as a write release.

    Pipelining (see ``docs/PROTOCOL.md`` §6) shapes the semantics:

    - sequence numbers above the retention horizon that have not been
      seen yet are dispatched **concurrently and in any order** — a
      multiplexed channel keeps many in flight at once, and the executor
      may start them out of order;
    - a retry that races its own original (the original is still
      dispatching) waits for that dispatch and replays its reply rather
      than double-dispatching;
    - only sequence numbers at or below the horizon — evicted from the
      window, necessarily acknowledged long ago — are rejected as stale.

    Sessions are keyed by ``(client_id, nonce)``: each channel draws a
    random session nonce at construction, so a fresh channel reusing a
    client id (a CLI tool run twice, a reconnect wrapper recreating its
    inner channel) starts its own sequence space instead of colliding
    with the previous channel's — without the nonce the new channel's
    restarted sequence would either replay a stale cached reply or be
    rejected outright.

    A sequence number of 0 opts out of deduplication (used by one-shot
    tools that never retry).  The cache is the durable half of a client
    session: a server that restarts with a fresh cache loses exactly-once
    semantics for retries that straddle the restart, so deployments that
    restart transports in place should carry the cache over (see
    ``docs/ROBUSTNESS.md``).  Clients must keep their in-flight window
    smaller than ``window`` or retries can fall off the retention edge.
    """

    def __init__(self, max_clients: int = 1024, window: int = 256):
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self._max_clients = max_clients
        self._window = window
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[Tuple[str, int], _ReplySession]" = OrderedDict()
        metrics = get_registry()
        self._m_hits = metrics.counter(
            "transport.server.dedup_hits",
            "retried requests answered from the reply cache")
        self._m_evictions = metrics.counter(
            "transport.server.dedup_evictions",
            "dedup sessions evicted by the LRU bound (at-most-once lost)")

    def _session(self, client_id: str, nonce: int) -> _ReplySession:
        key = (client_id, nonce)
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = _ReplySession()
                self._sessions[key] = session
                self._evict_locked()
            else:
                self._sessions.move_to_end(key)
            return session

    def _evict_locked(self) -> None:
        """Enforce the LRU bound; caller holds ``self._lock``.

        Evicting a session forfeits its at-most-once guarantee — a later
        retry from that client will re-dispatch — so the loss is counted
        and logged rather than silent, and a session with a dispatch
        running right now is never evicted.
        """
        while len(self._sessions) > self._max_clients:
            for key, session in self._sessions.items():
                if not session.busy():
                    del self._sessions[key]
                    self._m_evictions.inc()
                    _log.warning(
                        "reply-cache session %r evicted (LRU bound %d): "
                        "a retry from this client will re-dispatch",
                        key, self._max_clients)
                    break
            else:
                return  # every session is mid-dispatch; overflow briefly

    def execute(self, client_id: str, seq: int,
                dispatch: Callable[[], bytes], nonce: int = 0) -> bytes:
        """Run ``dispatch`` once per (client, nonce, seq), replaying
        cached replies for retries within the same session.

        Distinct in-window sequence numbers dispatch concurrently (no
        per-session serialization): pipelined channels rely on it.  A
        retry of a sequence number whose original dispatch is still
        running blocks until that dispatch finishes and shares its
        reply.  Deadlock-freedom with a bounded dispatch pool rests on
        FIFO task start order: a duplicate is always submitted after its
        original, so by the time the duplicate runs its original is
        either finished or running on another worker — a blocked waiter
        therefore always has a progressing partner.
        """
        if seq == 0:
            return dispatch()
        session = self._session(client_id, nonce)
        while True:
            with session.lock:
                cached = session.replies.get(seq)
                if cached is not None:
                    self._m_hits.inc()
                    return cached
                racing = session.pending.get(seq)
                if racing is None:
                    if seq <= session.horizon:
                        raise WireFormatError(
                            f"stale sequence number {seq} from {client_id!r} "
                            f"(retention horizon {session.horizon}, newest "
                            f"seen {session.last_seq})")
                    event = threading.Event()
                    session.pending[seq] = event
                    break
            # a retry raced its original mid-dispatch: wait for the
            # original and replay its reply (loop re-checks the cache)
            racing.wait()
        try:
            reply = dispatch()
        except BaseException:
            # a failed dispatch is not cached (the transport answers the
            # client with an ErrorReply); a retry may re-dispatch
            with session.lock:
                session.pending.pop(seq, None)
            event.set()
            raise
        with session.lock:
            session.pending.pop(seq, None)
            session.replies[seq] = reply
            if seq > session.last_seq:
                session.last_seq = seq
            while len(session.replies) > self._window:
                evicted, _ = session.replies.popitem(last=False)
                if evicted > session.horizon:
                    session.horizon = evicted
        event.set()
        return reply

    def __len__(self):
        with self._lock:
            return len(self._sessions)


class NetworkModel:
    """An optional latency/bandwidth cost model for simulated WAN links.

    ``transfer_time(nbytes)`` returns seconds of simulated time a message
    of that size occupies the link; channels with a virtual clock advance
    it by that much, letting experiments reason about slow Internet links
    without real sleeps.
    """

    def __init__(self, latency: float = 0.0, bandwidth: Optional[float] = None):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bytes/second)")
        self.latency = latency
        self.bandwidth = bandwidth

    def transfer_time(self, nbytes: int) -> float:
        cost = self.latency
        if self.bandwidth is not None:
            cost += nbytes / self.bandwidth
        return cost
