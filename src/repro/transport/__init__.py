"""Transports: byte-accounting in-process channels and real TCP sockets,
plus the fault-tolerance toolkit (retry policies, reply deduplication,
and deterministic fault injection)."""

from repro.transport.base import (
    Channel,
    Dispatcher,
    NetworkModel,
    NotificationSink,
    NullSink,
    ReplyCache,
    TransportStats,
)
from repro.transport.fault import FaultInjectingChannel, FaultPlan
from repro.transport.inproc import InProcChannel, InProcHub
from repro.transport.retry import RetryingChannel, RetryPolicy, is_retryable
from repro.transport.tcp import TCPChannel, TCPServerTransport

__all__ = [
    "Channel",
    "Dispatcher",
    "FaultInjectingChannel",
    "FaultPlan",
    "InProcChannel",
    "InProcHub",
    "NetworkModel",
    "NotificationSink",
    "NullSink",
    "ReplyCache",
    "RetryingChannel",
    "RetryPolicy",
    "TCPChannel",
    "TCPServerTransport",
    "TransportStats",
    "is_retryable",
]
