"""Transports: byte-accounting in-process channels and real TCP sockets,
plus the fault-tolerance toolkit (retry policies, reply deduplication,
and deterministic fault injection) and connection multiplexing (many
pipelined requests sharing one socket)."""

from repro.transport.base import (
    Channel,
    Dispatcher,
    NetworkModel,
    NotificationSink,
    NullSink,
    ReplyCache,
    ReplyFuture,
    TransportStats,
)
from repro.transport.aio import AsyncTCPServerTransport
from repro.transport.fault import FaultInjectingChannel, FaultPlan
from repro.transport.inproc import InProcChannel, InProcHub
from repro.transport.mux import MultiplexingChannel, MuxConnectionPool
from repro.transport.retry import RetryingChannel, RetryPolicy, is_retryable
from repro.transport.tcp import TCPChannel, TCPServerTransport

__all__ = [
    "AsyncTCPServerTransport",
    "Channel",
    "Dispatcher",
    "FaultInjectingChannel",
    "FaultPlan",
    "InProcChannel",
    "InProcHub",
    "MultiplexingChannel",
    "MuxConnectionPool",
    "NetworkModel",
    "NotificationSink",
    "NullSink",
    "ReplyCache",
    "ReplyFuture",
    "RetryingChannel",
    "RetryPolicy",
    "TCPChannel",
    "TCPServerTransport",
    "TransportStats",
    "is_retryable",
]
