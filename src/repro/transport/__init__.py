"""Transports: byte-accounting in-process channels and real TCP sockets."""

from repro.transport.base import (
    Channel,
    Dispatcher,
    NetworkModel,
    NotificationSink,
    NullSink,
    TransportStats,
)
from repro.transport.inproc import InProcChannel, InProcHub
from repro.transport.tcp import TCPChannel, TCPServerTransport

__all__ = [
    "Channel",
    "Dispatcher",
    "InProcChannel",
    "InProcHub",
    "NetworkModel",
    "NotificationSink",
    "NullSink",
    "TCPChannel",
    "TCPServerTransport",
    "TransportStats",
]
