"""Client <-> server protocol messages.

Every interaction between an InterWeave client library and a server is one
of a small set of request/reply messages, all serialized with the
canonical codec — even when client and server share a process, the message
crosses a real serialization boundary, so measured byte counts are genuine
wire sizes.

Requests
--------
- :class:`OpenSegmentRequest` — open (or create) a segment.
- :class:`LockAcquireRequest` — acquire a read or write lock; carries the
  client's cached version and coherence model so the server can decide
  whether the cache is "recent enough", and piggyback an update diff on
  the grant when it is not.
- :class:`LockReleaseRequest` — release a lock; a write release carries
  the wire-format diff of everything modified in the critical section.
- :class:`FetchRequest` — fetch an update diff without locking (used by
  the polling side of the adaptive polling/notification protocol).
- :class:`SubscribeRequest` — toggle server notifications for a segment
  (the notification side of the same protocol).
- :class:`GetStatsRequest` — introspect a live server: the reply carries
  a JSON snapshot of the server's metrics registry and segment table
  (see ``repro.obs`` and ``python -m repro.tools.stats_main``).

Replies mirror requests; :class:`ErrorReply` carries failures.

The cluster control plane (``repro.cluster``, docs/PROTOCOL.md §10)
adds two more request families over the same codec:

- :class:`DirectoryLookupRequest` / :class:`DirectoryUpdateRequest` —
  spoken to a :class:`~repro.cluster.SegmentDirectory` to resolve or
  change segment → origin bindings;
- :class:`MigrateOutRequest` / :class:`MigrateInRequest` /
  :class:`MigrateCommitRequest` / :class:`MigrateAbortRequest` — the
  live-migration protocol between a coordinator and origin servers;
- :class:`RedirectReply` — any segment-addressed request may be
  answered with this instead of its normal reply when the addressed
  server no longer serves the segment; the client re-resolves and
  retries ("chases the redirect").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Dict, List, Optional, Tuple, Type

from repro.errors import WireFormatError
from repro.wire.codec import Reader, Writer, count_bytes_copied
from repro.wire.diff import (SegmentDiff, decode_segment_diff_from,
                             encode_segment_diff_into)

LOCK_READ = 0
LOCK_WRITE = 1

#: Coherence model identifiers carried in lock requests.
COHERENCE_FULL = 0
COHERENCE_DELTA = 1
COHERENCE_TEMPORAL = 2
COHERENCE_DIFF = 3


class Message:
    """Base: a self-identifying, codec-serializable protocol message."""

    TAG: int = -1

    def encode_body(self, out: Writer) -> None:
        raise NotImplementedError

    @classmethod
    def decode_body(cls, reader: Reader) -> "Message":
        raise NotImplementedError


_REGISTRY: Dict[int, Type[Message]] = {}


def _register(cls: Type[Message]) -> Type[Message]:
    if cls.TAG in _REGISTRY:
        raise ValueError(f"duplicate message tag {cls.TAG}")
    _REGISTRY[cls.TAG] = cls
    return cls


def encode_message(message: Message) -> bytes:
    out = Writer()
    out.u8(message.TAG)
    message.encode_body(out)
    return out.getvalue()


def decode_message(data: bytes) -> Message:
    reader = Reader(data)
    tag = reader.u8()
    cls = _REGISTRY.get(tag)
    if cls is None:
        raise WireFormatError(f"unknown message tag {tag}")
    message = cls.decode_body(reader)
    if not reader.at_end():
        raise WireFormatError(f"trailing bytes after {cls.__name__}")
    return message


def _encode_optional_diff(out: Writer, diff: Optional[SegmentDiff]) -> None:
    if diff is None:
        out.boolean(False)
    else:
        # encode straight into the message buffer (reserve the length
        # word, backpatch after) instead of via scratch bytes re-copied
        # with out.blob() — same wire layout, one fewer payload copy
        out.boolean(True)
        length_at = out.reserve_u32()
        written = encode_segment_diff_into(out, diff)
        out.patch_u32(length_at, written)


def _decode_optional_diff(reader: Reader) -> Optional[SegmentDiff]:
    if not reader.boolean():
        return None
    # decode in place: run payloads are memoryview slices of the message
    # buffer, not per-diff bytes copies
    return decode_segment_diff_from(reader, reader.u32())


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------

@_register
@dataclass
class OpenSegmentRequest(Message):
    TAG = 1
    segment: str
    create: bool = True
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).boolean(self.create).text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "OpenSegmentRequest":
        return cls(reader.text(), reader.boolean(), reader.text())


@_register
@dataclass
class LockAcquireRequest(Message):
    TAG = 2
    segment: str
    mode: int  # LOCK_READ or LOCK_WRITE
    client_id: str
    client_version: int  # version of the client's cached copy (0 = none)
    coherence_kind: int = COHERENCE_FULL
    coherence_param: float = 0.0
    client_time: float = 0.0  # client clock, for temporal coherence

    def encode_body(self, out: Writer) -> None:
        (out.text(self.segment).u8(self.mode).text(self.client_id)
            .u32(self.client_version).u8(self.coherence_kind)
            .f64(self.coherence_param).f64(self.client_time))

    @classmethod
    def decode_body(cls, reader: Reader) -> "LockAcquireRequest":
        return cls(reader.text(), reader.u8(), reader.text(), reader.u32(),
                   reader.u8(), reader.f64(), reader.f64())


@_register
@dataclass
class LockReleaseRequest(Message):
    TAG = 3
    segment: str
    mode: int
    client_id: str
    diff: Optional[SegmentDiff] = None  # present on write release

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).u8(self.mode).text(self.client_id)
        _encode_optional_diff(out, self.diff)

    @classmethod
    def decode_body(cls, reader: Reader) -> "LockReleaseRequest":
        return cls(reader.text(), reader.u8(), reader.text(),
                   _decode_optional_diff(reader))


@_register
@dataclass
class FetchRequest(Message):
    TAG = 4
    segment: str
    client_id: str
    client_version: int
    #: metadata only: block skeletons and types, no data runs.  Used by
    #: IW_mip_to_ptr to reserve space for a segment that is not yet locked
    #: ("actual data will not be copied until the segment is locked").
    meta_only: bool = False

    def encode_body(self, out: Writer) -> None:
        (out.text(self.segment).text(self.client_id)
            .u32(self.client_version).boolean(self.meta_only))

    @classmethod
    def decode_body(cls, reader: Reader) -> "FetchRequest":
        return cls(reader.text(), reader.text(), reader.u32(), reader.boolean())


@_register
@dataclass
class DeleteSegmentRequest(Message):
    """Destroy a segment at the server.  Clients still caching it will get
    errors on their next validation — deletion is administrative, not
    coherent."""

    TAG = 6
    segment: str
    client_id: str

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "DeleteSegmentRequest":
        return cls(reader.text(), reader.text())


@_register
@dataclass
class DeleteSegmentReply(Message):
    TAG = 70
    deleted: bool

    def encode_body(self, out: Writer) -> None:
        out.boolean(self.deleted)

    @classmethod
    def decode_body(cls, reader: Reader) -> "DeleteSegmentReply":
        return cls(reader.boolean())


@_register
@dataclass
class GetStatsRequest(Message):
    """Ask the server for a stats snapshot (purely observational: no
    segment or coherence state changes)."""

    TAG = 7
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        out.text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "GetStatsRequest":
        return cls(reader.text())


@_register
@dataclass
class GetStatsReply(Message):
    """The snapshot, as canonical JSON text (sorted keys): a ``server``
    section (name, segment table) and a ``metrics`` section (the
    registry snapshot).  JSON keeps the payload schema-free so servers
    can grow new metrics without a protocol revision."""

    TAG = 71
    payload: str

    def encode_body(self, out: Writer) -> None:
        out.text(self.payload)

    @classmethod
    def decode_body(cls, reader: Reader) -> "GetStatsReply":
        return cls(reader.text())

    def to_dict(self) -> dict:
        import json

        return json.loads(self.payload)


@_register
@dataclass
class SubscribeRequest(Message):
    TAG = 5
    segment: str
    client_id: str
    enable: bool

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).text(self.client_id).boolean(self.enable)

    @classmethod
    def decode_body(cls, reader: Reader) -> "SubscribeRequest":
        return cls(reader.text(), reader.text(), reader.boolean())


# ---------------------------------------------------------------------------
# replies
# ---------------------------------------------------------------------------

@_register
@dataclass
class OpenSegmentReply(Message):
    TAG = 64
    existed: bool
    version: int

    def encode_body(self, out: Writer) -> None:
        out.boolean(self.existed).u32(self.version)

    @classmethod
    def decode_body(cls, reader: Reader) -> "OpenSegmentReply":
        return cls(reader.boolean(), reader.u32())


@_register
@dataclass
class LockAcquireReply(Message):
    TAG = 65
    granted: bool
    version: int = 0  # current segment version at the server
    #: seconds of write-lock lease granted (0 on reads and denials); the
    #: server renews the lease on every request the writer sends for the
    #: segment and may reclaim the lock once the lease lapses
    lease_remaining: float = 0.0
    diff: Optional[SegmentDiff] = None  # update, when the cache is stale

    def encode_body(self, out: Writer) -> None:
        out.boolean(self.granted).u32(self.version).f64(self.lease_remaining)
        _encode_optional_diff(out, self.diff)

    @classmethod
    def decode_body(cls, reader: Reader) -> "LockAcquireReply":
        return cls(reader.boolean(), reader.u32(), reader.f64(),
                   _decode_optional_diff(reader))


@_register
@dataclass
class LockReleaseReply(Message):
    TAG = 66
    version: int  # the version the release produced (write) or held (read)

    def encode_body(self, out: Writer) -> None:
        out.u32(self.version)

    @classmethod
    def decode_body(cls, reader: Reader) -> "LockReleaseReply":
        return cls(reader.u32())


@_register
@dataclass
class FetchReply(Message):
    TAG = 67
    version: int
    diff: Optional[SegmentDiff] = None  # None when already current

    def encode_body(self, out: Writer) -> None:
        out.u32(self.version)
        _encode_optional_diff(out, self.diff)

    @classmethod
    def decode_body(cls, reader: Reader) -> "FetchReply":
        return cls(reader.u32(), _decode_optional_diff(reader))


@_register
@dataclass
class SubscribeReply(Message):
    TAG = 68
    enabled: bool

    def encode_body(self, out: Writer) -> None:
        out.boolean(self.enabled)

    @classmethod
    def decode_body(cls, reader: Reader) -> "SubscribeReply":
        return cls(reader.boolean())


@_register
@dataclass
class NotifyInvalidate(Message):
    """Server -> client notification: the segment moved past a coherence
    bound, so the client's next acquire must revalidate."""

    TAG = 69
    segment: str
    version: int

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).u32(self.version)

    @classmethod
    def decode_body(cls, reader: Reader) -> "NotifyInvalidate":
        return cls(reader.text(), reader.u32())


@_register
@dataclass
class ErrorReply(Message):
    TAG = 127
    message: str

    def encode_body(self, out: Writer) -> None:
        out.text(self.message)

    @classmethod
    def decode_body(cls, reader: Reader) -> "ErrorReply":
        return cls(reader.text())


# ---------------------------------------------------------------------------
# cluster control plane (repro.cluster; docs/PROTOCOL.md §10)
# ---------------------------------------------------------------------------

#: DirectoryUpdateRequest operations.
DIR_ADD_ORIGIN = 0
DIR_REMOVE_ORIGIN = 1
DIR_PIN = 2
DIR_UNPIN = 3
DIR_MIGRATE = 4


def _encode_diff_entries(out: Writer,
                         entries: List[Tuple[int, int, bytes]]) -> None:
    out.u32(len(entries))
    for from_version, to_version, encoded in entries:
        out.u32(from_version).u32(to_version).blob(encoded)


def _decode_diff_entries(reader: Reader) -> List[Tuple[int, int, bytes]]:
    return [(reader.u32(), reader.u32(), reader.blob())
            for _ in range(reader.u32())]


@_register
@dataclass
class DirectoryLookupRequest(Message):
    """Resolve ``segment`` to the origin server currently bound to it."""

    TAG = 8
    segment: str
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "DirectoryLookupRequest":
        return cls(reader.text(), reader.text())


@_register
@dataclass
class DirectoryLookupReply(Message):
    TAG = 72
    origin: str
    #: the binding's generation stamp; redirects carrying an older
    #: generation than a cached binding are ignored
    generation: int = 0
    pinned: bool = False

    def encode_body(self, out: Writer) -> None:
        out.text(self.origin).u64(self.generation).boolean(self.pinned)

    @classmethod
    def decode_body(cls, reader: Reader) -> "DirectoryLookupReply":
        return cls(reader.text(), reader.u64(), reader.boolean())


@_register
@dataclass
class DirectoryUpdateRequest(Message):
    """Change ring membership or per-segment bindings (``DIR_*`` ops).

    ``origin`` names the server being added/removed or the pin/migration
    target; ``segment`` is used by the pin/unpin/migrate operations.
    """

    TAG = 9
    op: int
    origin: str = ""
    segment: str = ""
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        (out.u8(self.op).text(self.origin).text(self.segment)
            .text(self.client_id))

    @classmethod
    def decode_body(cls, reader: Reader) -> "DirectoryUpdateRequest":
        return cls(reader.u8(), reader.text(), reader.text(), reader.text())


@_register
@dataclass
class DirectoryUpdateReply(Message):
    TAG = 73
    ok: bool
    generation: int = 0

    def encode_body(self, out: Writer) -> None:
        out.boolean(self.ok).u64(self.generation)

    @classmethod
    def decode_body(cls, reader: Reader) -> "DirectoryUpdateReply":
        return cls(reader.boolean(), reader.u64())


@_register
@dataclass
class RedirectReply(Message):
    """"WrongServer": the addressed server does not serve ``segment``
    (any more); ``origin`` does, as of binding ``generation``."""

    TAG = 74
    segment: str
    origin: str
    generation: int = 0

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).text(self.origin).u64(self.generation)

    @classmethod
    def decode_body(cls, reader: Reader) -> "RedirectReply":
        return cls(reader.text(), reader.text(), reader.u64())


@_register
@dataclass
class MigrateOutRequest(Message):
    """Freeze writes to ``segment`` and export its full state."""

    TAG = 10
    segment: str
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "MigrateOutRequest":
        return cls(reader.text(), reader.text())


@_register
@dataclass
class MigrateOutReply(Message):
    """The frozen segment: a checkpoint image plus the diff-cache
    entries worth re-seeding at the target."""

    TAG = 75
    version: int
    payload: bytes
    diffs: List[Tuple[int, int, bytes]] = field(default_factory=list)

    def encode_body(self, out: Writer) -> None:
        out.u32(self.version).blob(self.payload)
        _encode_diff_entries(out, self.diffs)

    @classmethod
    def decode_body(cls, reader: Reader) -> "MigrateOutReply":
        return cls(reader.u32(), reader.blob(), _decode_diff_entries(reader))


@_register
@dataclass
class MigrateInRequest(Message):
    """Install an exported segment at the target origin."""

    TAG = 11
    segment: str
    payload: bytes
    diffs: List[Tuple[int, int, bytes]] = field(default_factory=list)
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).blob(self.payload)
        _encode_diff_entries(out, self.diffs)
        out.text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "MigrateInRequest":
        return cls(reader.text(), reader.blob(), _decode_diff_entries(reader),
                   reader.text())


@_register
@dataclass
class MigrateCommitRequest(Message):
    """Drop the frozen source copy and leave a redirect tombstone."""

    TAG = 12
    segment: str
    target: str
    generation: int = 0
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        (out.text(self.segment).text(self.target).u64(self.generation)
            .text(self.client_id))

    @classmethod
    def decode_body(cls, reader: Reader) -> "MigrateCommitRequest":
        return cls(reader.text(), reader.text(), reader.u64(), reader.text())


@_register
@dataclass
class MigrateAbortRequest(Message):
    """Unfreeze a segment whose migration failed before commit."""

    TAG = 13
    segment: str
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "MigrateAbortRequest":
        return cls(reader.text(), reader.text())


@_register
@dataclass
class MigrateAck(Message):
    """Acknowledges MigrateIn / MigrateCommit / MigrateAbort."""

    TAG = 76
    ok: bool = True

    def encode_body(self, out: Writer) -> None:
        out.boolean(self.ok)

    @classmethod
    def decode_body(cls, reader: Reader) -> "MigrateAck":
        return cls(reader.boolean())


# ---------------------------------------------------------------------------
# primary-backup replication (repro.replication; docs/PROTOCOL.md §11)
# ---------------------------------------------------------------------------

#: ReplicateAppendRequest kinds.
REPL_DIFF = 0      # one committed diff (the WAL record, re-shipped)
REPL_LEASE = 1     # a write-lease grant or release at the primary
REPL_PROMOTE = 2   # control: backup becomes primary for its segments


@_register
@dataclass
class ReplicateAppendRequest(Message):
    """One record of the primary's replication stream.

    ``REPL_DIFF`` carries the same encoded diff bytes the primary
    appended to its WAL; the backup applies it only when
    ``from_version`` matches its copy (otherwise it nacks and the
    primary falls back to :class:`ReplicateCatchupRequest`).
    ``REPL_LEASE`` mirrors write-lease grants/releases so the backup
    can honor an in-flight writer's lease after failover (``writer`` is
    empty for a release); ``lease_expiry`` is the primary-clock expiry
    time.  ``REPL_PROMOTE`` tells the backup to start serving as
    primary (``segment`` is empty: promotion is server-wide).
    """

    TAG = 14
    kind: int
    segment: str = ""
    from_version: int = 0
    to_version: int = 0
    timestamp: float = 0.0
    payload: bytes = b""
    writer: str = ""          # REPL_LEASE: lease holder ("" = released)
    lease_expiry: float = 0.0
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        # the replication ship copy: the release's encoded diff bytes
        # spliced into the stream message (the one copy the replication
        # tier takes — the WAL and DiffCache share the same buffer)
        count_bytes_copied(len(self.payload))
        (out.u8(self.kind).text(self.segment).u32(self.from_version)
            .u32(self.to_version).f64(self.timestamp).blob(self.payload)
            .text(self.writer).f64(self.lease_expiry).text(self.client_id))

    @classmethod
    def decode_body(cls, reader: Reader) -> "ReplicateAppendRequest":
        return cls(reader.u8(), reader.text(), reader.u32(), reader.u32(),
                   reader.f64(), reader.blob(), reader.text(), reader.f64(),
                   reader.text())


@_register
@dataclass
class ReplicateCatchupRequest(Message):
    """Full-state resync for one segment: a checkpoint image plus the
    diff-cache entries worth re-seeding, exactly like migration's
    export.  Sent when the backup nacks an append (version gap) or when
    a segment first joins the stream."""

    TAG = 15
    segment: str
    version: int
    payload: bytes
    diffs: List[Tuple[int, int, bytes]] = field(default_factory=list)
    client_id: str = ""

    def encode_body(self, out: Writer) -> None:
        out.text(self.segment).u32(self.version).blob(self.payload)
        _encode_diff_entries(out, self.diffs)
        out.text(self.client_id)

    @classmethod
    def decode_body(cls, reader: Reader) -> "ReplicateCatchupRequest":
        return cls(reader.text(), reader.u32(), reader.blob(),
                   _decode_diff_entries(reader), reader.text())


@_register
@dataclass
class ReplicateAck(Message):
    """Acknowledges a replication record; ``version`` is the backup's
    version of the segment after applying (the primary derives
    replication lag from it).  ``ok=False`` means the record could not
    be applied in sequence and the segment needs a catchup."""

    TAG = 77
    ok: bool = True
    version: int = 0

    def encode_body(self, out: Writer) -> None:
        out.boolean(self.ok).u32(self.version)

    @classmethod
    def decode_body(cls, reader: Reader) -> "ReplicateAck":
        return cls(reader.boolean(), reader.u32())
