"""Machine-independent pointers (MIPs).

A MIP names data in a machine-independent way by concatenating the segment
URL with a block name or serial number and an optional offset, delimited by
pound signs::

    foo.org/path#block#offset

Offsets are measured in *primitive data units* — characters, integers,
floats, etc. — rather than bytes, which is what lets a MIP produced on a
big-endian 64-bit machine resolve correctly on a little-endian 32-bit one.

A block reference that consists only of digits is a serial number;
otherwise it is a symbolic block name (so purely numeric block names are
not allowed — the same rule the URL syntax forces on the paper's
implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import MIPError


@dataclass(frozen=True)
class MIP:
    """A parsed machine-independent pointer."""

    segment: str
    block: Union[int, str]  # serial number or symbolic name
    offset: int = 0  # primitive units from the start of the block

    def __post_init__(self):
        if not self.segment:
            raise MIPError("MIP segment name must be non-empty")
        if "#" in self.segment:
            raise MIPError(f"segment name may not contain '#': {self.segment!r}")
        if isinstance(self.block, str):
            if not self.block or "#" in self.block:
                raise MIPError(f"bad block name {self.block!r}")
            if self.block.isdigit():
                raise MIPError(f"block name {self.block!r} would parse as a serial")
        elif self.block < 1:
            raise MIPError(f"block serial must be >= 1, got {self.block}")
        if self.offset < 0:
            raise MIPError(f"MIP offset must be >= 0, got {self.offset}")

    def __str__(self) -> str:
        if self.offset:
            return f"{self.segment}#{self.block}#{self.offset}"
        return f"{self.segment}#{self.block}"


def format_mip(segment: str, block: Union[int, str], offset: int = 0) -> str:
    return str(MIP(segment, block, offset))


def parse_mip(text: str) -> MIP:
    """Parse ``segment#block[#offset]`` into a :class:`MIP`."""
    parts = text.split("#")
    if len(parts) < 2 or len(parts) > 3:
        raise MIPError(f"malformed MIP {text!r} (expected segment#block[#offset])")
    segment, block_text = parts[0], parts[1]
    block: Union[int, str]
    if block_text.isdigit():
        block = int(block_text)
    else:
        block = block_text
    offset = 0
    if len(parts) == 3:
        if not parts[2].isdigit():
            raise MIPError(f"malformed MIP offset {parts[2]!r} in {text!r}")
        offset = int(parts[2])
    return MIP(segment, block, offset)
