"""A minimal canonical binary codec (big-endian, length-prefixed blobs).

Everything InterWeave puts on the wire — diffs, protocol messages, type
descriptors — is built from a handful of primitives: fixed-width unsigned
integers, raw byte runs, and length-prefixed blobs/strings.  This module
provides the writer/reader pair the other wire modules share.
"""

from __future__ import annotations

import struct

from repro.errors import WireFormatError

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")


class Writer:
    """Accumulates canonical bytes.

    Backed by one growable ``bytearray`` rather than a list of parts: a
    large diff writes tens of thousands of one- and four-byte fields,
    and amortized in-place append beats allocating a tiny ``bytes``
    object per field plus a final join (``bench_protocol.py`` measures
    the difference).
    """

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = bytearray()

    def u8(self, value: int) -> "Writer":
        self._buffer.append(value)
        return self

    def u32(self, value: int) -> "Writer":
        self._buffer += _U32.pack(value)
        return self

    def u64(self, value: int) -> "Writer":
        self._buffer += _U64.pack(value)
        return self

    def f64(self, value: float) -> "Writer":
        self._buffer += _F64.pack(value)
        return self

    def boolean(self, value: bool) -> "Writer":
        return self.u8(1 if value else 0)

    def raw(self, data: bytes) -> "Writer":
        self._buffer += data
        return self

    def blob(self, data: bytes) -> "Writer":
        self.u32(len(data))
        return self.raw(data)

    def text(self, value: str) -> "Writer":
        return self.blob(value.encode("utf-8"))

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class Reader:
    """Consumes canonical bytes, raising WireFormatError on truncation."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset

    def u8(self) -> int:
        if self.offset >= len(self.data):
            raise WireFormatError("buffer truncated")
        value = self.data[self.offset]
        self.offset += 1
        return value

    def _unpack(self, codec):
        try:
            (value,) = codec.unpack_from(self.data, self.offset)
        except struct.error:
            raise WireFormatError("buffer truncated") from None
        self.offset += codec.size
        return value

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def f64(self) -> float:
        return self._unpack(_F64)

    def boolean(self) -> bool:
        return self.u8() != 0

    def raw(self, size: int) -> bytes:
        chunk = self.data[self.offset:self.offset + size]
        if len(chunk) != size:
            raise WireFormatError("buffer truncated")
        self.offset += size
        return chunk

    def blob(self) -> bytes:
        return self.raw(self.u32())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in text field: {exc}") from exc

    def at_end(self) -> bool:
        return self.offset == len(self.data)
