"""A minimal canonical binary codec (big-endian, length-prefixed blobs).

Everything InterWeave puts on the wire — diffs, protocol messages, type
descriptors — is built from a handful of primitives: fixed-width unsigned
integers, raw byte runs, and length-prefixed blobs/strings.  This module
provides the writer/reader pair the other wire modules share.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.errors import WireFormatError
from repro.obs.metrics import get_registry

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

#: Anything the codec can read from or splice into a buffer without a copy.
Buffer = Union[bytes, bytearray, memoryview]


def count_bytes_copied(amount: int) -> None:
    """Record payload bytes duplicated into a new buffer on the data plane.

    ``wire.bytes_copied`` is the copy-amplification metric: every point
    where diff payload is materialized (a decode that copies instead of
    slicing a view, a join before a scatter, a payload spliced into an
    outgoing message) reports the byte count here, so
    ``bytes_copied / payload_bytes`` is measurable per release.
    """
    if amount:
        get_registry().counter("wire.bytes_copied").inc(amount)


class Writer:
    """Accumulates canonical bytes.

    Backed by one growable ``bytearray`` rather than a list of parts: a
    large diff writes tens of thousands of one- and four-byte fields,
    and amortized in-place append beats allocating a tiny ``bytes``
    object per field plus a final join (``bench_protocol.py`` measures
    the difference).
    """

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = bytearray()

    def u8(self, value: int) -> "Writer":
        self._buffer.append(value)
        return self

    def u32(self, value: int) -> "Writer":
        self._buffer += _U32.pack(value)
        return self

    def u64(self, value: int) -> "Writer":
        self._buffer += _U64.pack(value)
        return self

    def f64(self, value: float) -> "Writer":
        self._buffer += _F64.pack(value)
        return self

    def boolean(self, value: bool) -> "Writer":
        return self.u8(1 if value else 0)

    def raw(self, data: bytes) -> "Writer":
        self._buffer += data
        return self

    def blob(self, data: bytes) -> "Writer":
        self.u32(len(data))
        return self.raw(data)

    def text(self, value: str) -> "Writer":
        return self.blob(value.encode("utf-8"))

    def tell(self) -> int:
        """Current write position (bytes emitted so far)."""
        return len(self._buffer)

    def reserve_u32(self) -> int:
        """Append a u32 placeholder and return its position for patch_u32.

        This is how length-prefixed sections are emitted without building
        the section in a scratch buffer and re-copying it: reserve the
        length word, encode the section in place, then backpatch.
        """
        position = len(self._buffer)
        self._buffer += b"\x00\x00\x00\x00"
        return position

    def patch_u32(self, position: int, value: int) -> None:
        """Overwrite a previously reserved u32 in place."""
        _U32.pack_into(self._buffer, position, value)

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class Reader:
    """Consumes canonical bytes, raising WireFormatError on truncation.

    ``raw``/``blob`` return ``bytes`` copies; ``raw_view``/``blob_view``
    return ``memoryview`` slices over the receive buffer instead.  A view
    keeps the underlying buffer alive via its refcount, so handing views
    to a decoder is safe as long as the buffer itself is immutable
    (``bytes``); decoders that may receive a *recycled* (mutable) buffer
    must materialize at the decode boundary — see
    ``wire.diff.decode_segment_diff``.
    """

    __slots__ = ("data", "offset", "_view")

    def __init__(self, data: Buffer, offset: int = 0):
        self.data = data
        self.offset = offset
        self._view = None

    def u8(self) -> int:
        if self.offset >= len(self.data):
            raise WireFormatError("buffer truncated")
        value = self.data[self.offset]
        self.offset += 1
        return value

    def _unpack(self, codec):
        try:
            (value,) = codec.unpack_from(self.data, self.offset)
        except struct.error:
            raise WireFormatError("buffer truncated") from None
        self.offset += codec.size
        return value

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def f64(self) -> float:
        return self._unpack(_F64)

    def boolean(self) -> bool:
        return self.u8() != 0

    def raw(self, size: int) -> bytes:
        chunk = self.data[self.offset:self.offset + size]
        if len(chunk) != size:
            raise WireFormatError("buffer truncated")
        self.offset += size
        return bytes(chunk)

    def blob(self) -> bytes:
        return self.raw(self.u32())

    def raw_view(self, size: int) -> memoryview:
        """Zero-copy variant of raw(): a memoryview slice of the buffer."""
        if self._view is None:
            self._view = memoryview(self.data)
        chunk = self._view[self.offset:self.offset + size]
        if len(chunk) != size:
            raise WireFormatError("buffer truncated")
        self.offset += size
        return chunk

    def blob_view(self) -> memoryview:
        """Zero-copy variant of blob(): length-prefixed memoryview slice."""
        return self.raw_view(self.u32())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in text field: {exc}") from exc

    def at_end(self) -> bool:
        return self.offset == len(self.data)
