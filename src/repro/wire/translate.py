"""Translation between local memory format and machine-independent wire format.

This is the client's "diff collection" / "diff application" engine from
Section 3.1 of the paper: given a block's flattened layout and a range of
primitive units, it converts the local-format bytes (native byte order,
native alignment) to canonical wire format and back.

Wire format of a run of primitive units, in primitive-offset order:

- fixed-size primitives: big-endian IEEE/two's-complement bytes, packed
  with no padding (char 1, short 2, int 4, hyper 8, float 4, double 8);
- strings: a 4-byte big-endian length followed by the content bytes
  (the capacity is part of the type, not the wire data);
- pointers: a 4-byte length followed by the MIP text (swizzled from the
  local machine address by the caller-provided hook), empty for NULL.

Three execution strategies, chosen per layout:

1. **dense** — all runs are repeat-1 and fixed-size (flat arrays, records
   of scalars): one vectorized byteswap-copy per run intersection;
2. **strided** — a uniform layout of repeated instances (array of
   records), all fixed-size: full instances are translated with strided
   numpy gathers/scatters, partial head/tail instances per-unit;
3. **per-unit** — anything containing strings or pointers, or irregular
   geometry: a Python loop over units (inherently slower — exactly the
   workloads the paper's Figure 4 shows as expensive even in C).
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional

import numpy as np

from repro.arch import WIRE_SIZES, Architecture, PrimKind
from repro.errors import WireFormatError
from repro.memory.mmu import AddressSpace
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.types import FlatLayout, iter_units
from repro.wire.codec import count_bytes_copied
from repro.wire.diff import RunColumns

#: Length-header codec for variable-size units (strings and MIPs).
_LEN = struct.Struct(">I")


class TranslationContext:
    """Memory + architecture + pointer swizzling hooks.

    ``pointer_to_mip(address) -> str`` is consulted when collecting a
    pointer unit (local -> wire); ``mip_to_pointer(text) -> int`` when
    applying one (wire -> local).  They default to hooks that reject any
    non-NULL pointer, which is correct for pointer-free data.
    """

    __slots__ = ("memory", "arch", "pointer_to_mip", "mip_to_pointer",
                 "_m_swizzled", "_m_unswizzled")

    def __init__(self, memory: AddressSpace, arch: Architecture,
                 pointer_to_mip: Optional[Callable[[int], str]] = None,
                 mip_to_pointer: Optional[Callable[[str], int]] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.memory = memory
        self.arch = arch
        self.pointer_to_mip = pointer_to_mip or _reject_pointer
        self.mip_to_pointer = mip_to_pointer or _reject_mip
        metrics = metrics or get_registry()
        self._m_swizzled = metrics.counter(
            "wire.swizzle.pointers_to_mips", "pointers swizzled at collect")
        self._m_unswizzled = metrics.counter(
            "wire.swizzle.mips_to_pointers", "MIPs unswizzled at apply")


def _reject_pointer(address: int) -> str:
    raise WireFormatError(
        f"pointer value {address:#x} encountered but no swizzle hook installed")


def _reject_mip(text: str) -> int:
    raise WireFormatError(f"MIP {text!r} encountered but no unswizzle hook installed")


def _is_dense_fixed(layout: FlatLayout) -> bool:
    return (not layout.has_variable
            and all(run.repeat == 1 for run in layout.runs))


def _byteswapped(view: np.ndarray, unit_size: int) -> np.ndarray:
    """Reverse the byte order of every ``unit_size``-byte unit in ``view``.

    ``view`` has shape (..., count*unit_size); the result is a contiguous
    array of the same shape.
    """
    if unit_size == 1:
        return view
    shape = view.shape[:-1] + (view.shape[-1] // unit_size, unit_size)
    return np.ascontiguousarray(view.reshape(shape)[..., ::-1]).reshape(view.shape)


# ---------------------------------------------------------------------------
# collection: local format -> wire format
# ---------------------------------------------------------------------------

def collect_range(ctx: TranslationContext, layout: FlatLayout, base: int,
                  prim_start: int, prim_count: int) -> bytes:
    """Translate units [prim_start, prim_start+prim_count) to wire bytes."""
    if prim_count <= 0:
        return b""
    prim_end = prim_start + prim_count
    if prim_end > layout.prim_count:
        raise WireFormatError(
            f"prim range [{prim_start}, {prim_end}) exceeds block ({layout.prim_count} units)")

    if _is_dense_fixed(layout):
        return _collect_dense(ctx, layout, base, prim_start, prim_end)
    if layout.uniform and not layout.has_variable:
        return _collect_strided(ctx, layout, base, prim_start, prim_end)
    return _collect_per_unit(ctx, layout, base, prim_start, prim_end)


def _collect_dense(ctx, layout, base, prim_start, prim_end) -> bytes:
    little = ctx.arch.endian == "little"
    parts: List[bytes] = []
    for run in layout.runs:
        lo = max(prim_start, run.prim_start)
        hi = min(prim_end, run.prim_start + run.unit_count)
        if lo >= hi:
            continue
        local = run.local_start + (lo - run.prim_start) * run.unit_size
        raw = ctx.memory.load(base + local, (hi - lo) * run.unit_size)
        if little and run.unit_size > 1:
            parts.append(_byteswapped(np.frombuffer(raw, np.uint8), run.unit_size).tobytes())
        else:
            parts.append(raw)
    return b"".join(parts)


def _collect_strided(ctx, layout, base, prim_start, prim_end) -> bytes:
    inst_prims = layout.instance_prims
    first = prim_start // inst_prims
    full_lo = first + (1 if prim_start % inst_prims else 0)
    full_hi = prim_end // inst_prims
    parts: List[bytes] = []
    # partial head instance
    if prim_start % inst_prims:
        head_end = min(prim_end, (first + 1) * inst_prims)
        parts.append(_collect_per_unit(ctx, layout, base, prim_start, head_end))
        if head_end == prim_end:
            return parts[0]
    # full middle instances, vectorized
    if full_lo < full_hi:
        count = full_hi - full_lo
        inst_size = layout.instance_size
        wire_stride = layout.instance_wire_size
        raw = ctx.memory.load(base + full_lo * inst_size, count * inst_size)
        local = np.frombuffer(raw, np.uint8).reshape(count, inst_size)
        wire = np.empty((count, wire_stride), np.uint8)
        little = ctx.arch.endian == "little"
        for index, run in enumerate(layout.runs):
            width = run.unit_count * run.unit_size
            src = local[:, run.local_start:run.local_start + width]
            if little and run.unit_size > 1:
                src = _byteswapped(src, run.unit_size)
            woff = layout.run_instance_wire_offset(index)
            wire[:, woff:woff + width] = src
        parts.append(wire.tobytes())
    # partial tail instance
    tail_start = max(prim_start, full_hi * inst_prims)
    if tail_start < prim_end and prim_end % inst_prims:
        parts.append(_collect_per_unit(ctx, layout, base, tail_start, prim_end))
    return b"".join(parts)


def _collect_per_unit(ctx, layout, base, prim_start, prim_end) -> bytes:
    little = ctx.arch.endian == "little"
    memory = ctx.memory
    parts: List[bytes] = []
    for _, run, i, j in iter_units(layout, prim_start, prim_end):
        address = base + run.unit_local_offset(i, j)
        kind = run.kind
        if kind is PrimKind.STRING:
            raw = memory.load(address, run.capacity)
            nul = raw.find(b"\x00")
            content = raw if nul < 0 else raw[:nul]
            parts.append(_LEN.pack(len(content)))
            parts.append(content)
        elif kind is PrimKind.POINTER:
            pointer = ctx.arch.decode_prim(PrimKind.POINTER,
                                           memory.load(address, run.unit_size))
            if pointer == 0:
                text = b""
            else:
                text = ctx.pointer_to_mip(pointer).encode("utf-8")
                ctx._m_swizzled.inc()
            parts.append(_LEN.pack(len(text)))
            parts.append(text)
        else:
            raw = memory.load(address, run.unit_size)
            parts.append(raw[::-1] if little and run.unit_size > 1 else raw)
    return b"".join(parts)


# ---------------------------------------------------------------------------
# application: wire format -> local format
# ---------------------------------------------------------------------------

def apply_range(ctx: TranslationContext, layout: FlatLayout, base: int,
                prim_start: int, prim_count: int, data: bytes, offset: int = 0) -> int:
    """Apply wire bytes to units [prim_start, prim_start+prim_count).

    Returns the offset just past the consumed bytes, so callers can apply
    several runs from one buffer.
    """
    if prim_count <= 0:
        return offset
    prim_end = prim_start + prim_count
    if prim_end > layout.prim_count:
        raise WireFormatError(
            f"prim range [{prim_start}, {prim_end}) exceeds block ({layout.prim_count} units)")

    if _is_dense_fixed(layout):
        return _apply_dense(ctx, layout, base, prim_start, prim_end, data, offset)
    if layout.uniform and not layout.has_variable:
        return _apply_strided(ctx, layout, base, prim_start, prim_end, data, offset)
    return _apply_per_unit(ctx, layout, base, prim_start, prim_end, data, offset)


def _apply_dense(ctx, layout, base, prim_start, prim_end, data, offset) -> int:
    little = ctx.arch.endian == "little"
    for run in layout.runs:
        lo = max(prim_start, run.prim_start)
        hi = min(prim_end, run.prim_start + run.unit_count)
        if lo >= hi:
            continue
        width = (hi - lo) * run.unit_size
        chunk = data[offset:offset + width]
        if len(chunk) != width:
            raise WireFormatError("wire diff truncated")
        offset += width
        if little and run.unit_size > 1:
            chunk = _byteswapped(np.frombuffer(chunk, np.uint8), run.unit_size).tobytes()
        local = run.local_start + (lo - run.prim_start) * run.unit_size
        ctx.memory.store(base + local, chunk)
    return offset


def _apply_strided(ctx, layout, base, prim_start, prim_end, data, offset) -> int:
    inst_prims = layout.instance_prims
    first = prim_start // inst_prims
    full_lo = first + (1 if prim_start % inst_prims else 0)
    full_hi = prim_end // inst_prims
    if prim_start % inst_prims:
        head_end = min(prim_end, (first + 1) * inst_prims)
        offset = _apply_per_unit(ctx, layout, base, prim_start, head_end, data, offset)
        if head_end == prim_end:
            return offset
    if full_lo < full_hi:
        count = full_hi - full_lo
        inst_size = layout.instance_size
        wire_stride = layout.instance_wire_size
        width = count * wire_stride
        chunk = data[offset:offset + width]
        if len(chunk) != width:
            raise WireFormatError("wire diff truncated")
        offset += width
        wire = np.frombuffer(chunk, np.uint8).reshape(count, wire_stride)
        span = base + full_lo * inst_size
        local = np.frombuffer(bytearray(ctx.memory.load(span, count * inst_size)),
                              np.uint8).reshape(count, inst_size)
        little = ctx.arch.endian == "little"
        for index, run in enumerate(layout.runs):
            run_width = run.unit_count * run.unit_size
            woff = layout.run_instance_wire_offset(index)
            src = wire[:, woff:woff + run_width]
            if little and run.unit_size > 1:
                src = _byteswapped(src, run.unit_size)
            local[:, run.local_start:run.local_start + run_width] = src
        ctx.memory.store(span, local.tobytes())
    tail_start = max(prim_start, full_hi * inst_prims)
    if tail_start < prim_end and prim_end % inst_prims:
        offset = _apply_per_unit(ctx, layout, base, tail_start, prim_end, data, offset)
    return offset


def _apply_per_unit(ctx, layout, base, prim_start, prim_end, data, offset) -> int:
    if not isinstance(data, (bytes, bytearray)):
        # string/pointer handling concatenates and decodes, which needs
        # real bytes — materialize a zero-copy view at this boundary
        data = bytes(data)
        count_bytes_copied(len(data))
    little = ctx.arch.endian == "little"
    memory = ctx.memory
    for _, run, i, j in iter_units(layout, prim_start, prim_end):
        address = base + run.unit_local_offset(i, j)
        kind = run.kind
        if kind is PrimKind.STRING:
            (length,) = _LEN.unpack_from(data, offset)
            offset += _LEN.size
            content = data[offset:offset + length]
            if len(content) != length:
                raise WireFormatError("wire diff truncated in string")
            offset += length
            if length > run.capacity - 1:
                raise WireFormatError(
                    f"wire string of {length} bytes exceeds capacity {run.capacity}")
            memory.store(address, content + b"\x00" * (run.capacity - length))
        elif kind is PrimKind.POINTER:
            (length,) = _LEN.unpack_from(data, offset)
            offset += _LEN.size
            text = data[offset:offset + length]
            if len(text) != length:
                raise WireFormatError("wire diff truncated in MIP")
            offset += length
            if length == 0:
                pointer = 0
            else:
                pointer = ctx.mip_to_pointer(text.decode("utf-8"))
                ctx._m_unswizzled.inc()
            memory.store(address, ctx.arch.encode_prim(PrimKind.POINTER, pointer))
        else:
            width = run.unit_size
            chunk = data[offset:offset + width]
            if len(chunk) != width:
                raise WireFormatError("wire diff truncated")
            offset += width
            memory.store(address, chunk[::-1] if little and width > 1 else chunk)
    return offset


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def wire_size_of_range(layout: FlatLayout, prim_start: int, prim_count: int) -> Optional[int]:
    """The exact wire size of a unit range, or None if it contains
    variable-size units (whose size depends on the data)."""
    if layout.has_variable:
        return None
    total = 0
    prim_end = prim_start + prim_count
    for run in layout.runs:
        size = WIRE_SIZES[run.kind]
        if run.repeat == 1:
            lo = max(prim_start, run.prim_start)
            hi = min(prim_end, run.prim_start + run.unit_count)
            if lo < hi:
                total += (hi - lo) * size
        else:
            for i in range(run.repeat):
                base = run.prim_start + i * run.prim_stride
                lo = max(prim_start, base)
                hi = min(prim_end, base + run.unit_count)
                if lo < hi:
                    total += (hi - lo) * size
    return total


def collect_block(ctx: TranslationContext, layout: FlatLayout, base: int) -> bytes:
    """Translate a whole block to wire format (no-diff mode's unit of work)."""
    return collect_range(ctx, layout, base, 0, layout.prim_count)


def apply_block(ctx: TranslationContext, layout: FlatLayout, base: int,
                data: bytes, offset: int = 0) -> int:
    """Apply a whole block's wire image to local memory."""
    return apply_range(ctx, layout, base, 0, layout.prim_count, data, offset)


# ---------------------------------------------------------------------------
# batched run translation
# ---------------------------------------------------------------------------
#
# A fine-grained diff can carry tens of thousands of small runs (Figure 5's
# ratio-4 case: every 4th word changed, gaps too wide to splice).  Paying a
# Python call per run would swamp the real translation cost, so for the
# common layout — one dense fixed-size run, i.e. flat arrays — whole run
# *lists* are translated with single numpy gathers/scatters.

def _single_dense_run(layout: FlatLayout):
    if layout.has_variable or len(layout.runs) != 1:
        return None
    run = layout.runs[0]
    return run if run.repeat == 1 else None


def _gather_indices(run, starts: np.ndarray, counts: np.ndarray):
    """Flat byte-index array covering every unit of every run."""
    unit = run.unit_size
    byte_starts = run.local_start + (starts - run.prim_start) * unit
    byte_lens = counts * unit
    total = int(byte_lens.sum())
    bounds = np.concatenate(([0], np.cumsum(byte_lens)))
    indices = np.repeat(byte_starts - bounds[:-1], byte_lens) + np.arange(total)
    return indices, byte_lens, bounds


def collect_runs(ctx: TranslationContext, layout: FlatLayout, base: int,
                 starts, counts) -> List[bytes]:
    """Translate many unit runs at once; returns one wire buffer per run.

    ``starts``/``counts`` are parallel sequences (arrays or lists) of
    primitive offsets and unit counts.  All runs are gathered in one numpy
    pass and sliced apart, so building a 16k-run diff costs a few array
    operations rather than a Python call per run.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    run = _single_dense_run(layout)
    if run is None or starts.size <= 4:
        # few runs: the contiguous-slice path beats building index arrays
        return [collect_range(ctx, layout, base, int(start), int(count))
                for start, count in zip(starts.tolist(), counts.tolist())]
    image = np.frombuffer(ctx.memory.load(base, layout.local_size), np.uint8)
    indices, byte_lens, bounds = _gather_indices(run, starts, counts)
    data = image[indices]
    if ctx.arch.endian == "little" and run.unit_size > 1:
        data = np.ascontiguousarray(
            data.reshape(-1, run.unit_size)[:, ::-1]).reshape(-1)
    buffer = data.tobytes()
    count_bytes_copied(len(buffer))  # slicing apart re-copies the gather
    return [buffer[int(lo):int(hi)] for lo, hi in zip(bounds[:-1], bounds[1:])]


def collect_runs_columns(ctx: TranslationContext, layout: FlatLayout,
                         base: int, starts, counts) -> Optional[RunColumns]:
    """Columnar variant of :func:`collect_runs`: one gather, one buffer.

    Returns a :class:`RunColumns` whose ``data`` is the single gathered
    wire buffer (never sliced apart), or None when the layout has no
    batched path / the run count is too small to be worth it — callers
    fall back to the per-run list path.
    """
    run = _single_dense_run(layout)
    if run is None:
        return None
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if starts.size <= 4:
        return None
    image = np.frombuffer(ctx.memory.load(base, layout.local_size), np.uint8)
    indices, byte_lens, bounds = _gather_indices(run, starts, counts)
    data = image[indices]
    if ctx.arch.endian == "little" and run.unit_size > 1:
        data = np.ascontiguousarray(
            data.reshape(-1, run.unit_size)[:, ::-1]).reshape(-1)
    return RunColumns(starts, counts, byte_lens, data.tobytes(), bounds)


def apply_runs(ctx: TranslationContext, layout: FlatLayout, base: int,
               runs, columns: Optional[RunColumns] = None) -> bool:
    """Apply many (prim_start, prim_count, data) runs in one scatter.

    Returns False when the layout has no batched path (caller falls back
    to per-run :func:`apply_range`).  Runs must be in-bounds and their
    data exactly sized — the same validation apply_range performs.

    When ``columns`` is given (a decoded diff's :class:`RunColumns`),
    the scatter reads straight from the columnar payload buffer — which
    may be a memoryview over the receive buffer — with no join and no
    per-run attribute walk.
    """
    run = _single_dense_run(layout)
    if run is None:
        return False
    if columns is not None:
        if columns.run_count <= 4:
            return False  # few runs: per-run apply_range is cheaper
        starts = columns.starts
        counts = columns.counts
        payload = np.frombuffer(columns.data, np.uint8)
    else:
        if len(runs) <= 4:
            return False
        starts = np.fromiter((r.prim_start for r in runs), np.int64, len(runs))
        counts = np.fromiter((r.prim_count for r in runs), np.int64, len(runs))
        joined = b"".join(r.data for r in runs)
        count_bytes_copied(len(joined))
        payload = np.frombuffer(joined, np.uint8)
    if int(starts.min()) < 0 or int((starts + counts).max()) > layout.prim_count:
        raise WireFormatError("diff run exceeds block bounds")
    expected = int(counts.sum()) * run.unit_size
    if len(payload) != expected:
        raise WireFormatError(
            f"diff runs carry {len(payload)} bytes, expected {expected}")
    data = payload
    if ctx.arch.endian == "little" and run.unit_size > 1:
        data = np.ascontiguousarray(
            data.reshape(-1, run.unit_size)[:, ::-1]).reshape(-1)
    image = np.frombuffer(bytearray(ctx.memory.load(base, layout.local_size)),
                          np.uint8)
    indices, _, _ = _gather_indices(run, starts, counts)
    image[indices] = data
    ctx.memory.store(base, image.tobytes())
    return True
