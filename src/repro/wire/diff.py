"""Wire-format diffs.

The paper's key departure from RPC marshaling is that the wire format can
carry not just data but *diffs*: concise, machine-independent descriptions
of only the data that changed.  A wire-format block diff consists of the
block's serial number, the diff's length in bytes, and a series of
run-length-encoded changes, each giving the starting point and length of
the change in primitive data units followed by the updated data in wire
format (Figure 3 of the paper).

A :class:`SegmentDiff` aggregates block diffs into the unit the protocol
ships: everything that changed in one segment between two versions,
together with newly created blocks (which carry their type serial and
optional symbolic name), freed blocks, and any type descriptors the
receiver has not seen yet.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import WireFormatError
from repro.obs.metrics import get_registry
from repro.wire.codec import Reader as _Reader, Writer as _Writer

_U32 = struct.Struct(">I")
_RUN_HEADER = struct.Struct(">II")


@dataclass
class DiffRun:
    """One RLE change section: start and length in primitive data units."""

    prim_start: int
    prim_count: int
    data: bytes  # the updated units, already in wire format


@dataclass
class BlockDiff:
    """All changes to one block.

    ``is_new`` marks blocks created since the receiver's version; they
    carry the type serial and optional name needed to materialize them.
    ``version`` is the segment version in which the block was last
    modified (server -> client direction; informs locality layout).
    A block diff with ``freed`` set tombstones a deallocated block.
    """

    serial: int
    runs: List[DiffRun] = field(default_factory=list)
    is_new: bool = False
    freed: bool = False
    type_serial: int = 0
    name: Optional[str] = None
    version: int = 0

    @property
    def data_bytes(self) -> int:
        """Payload bytes (the paper's per-block 'diff length')."""
        return sum(len(run.data) for run in self.runs)

    def covered_units(self) -> int:
        return sum(run.prim_count for run in self.runs)


@dataclass
class SegmentDiff:
    """Every change in one segment between two versions."""

    segment: str
    from_version: int  # 0 means "receiver has nothing" (full transfer)
    to_version: int
    block_diffs: List[BlockDiff] = field(default_factory=list)
    new_types: List[Tuple[int, bytes]] = field(default_factory=list)

    @property
    def is_full(self) -> bool:
        return self.from_version == 0

    def payload_bytes(self) -> int:
        """Total data payload across all block diffs."""
        return sum(diff.data_bytes for diff in self.block_diffs)


# ---------------------------------------------------------------------------
# binary codec
# ---------------------------------------------------------------------------

_FLAG_NEW = 0x01
_FLAG_FREED = 0x02
_FLAG_NAMED = 0x04


def encode_block_diff(diff: BlockDiff, writer: Optional[_Writer] = None) -> bytes:
    out = writer or _Writer()
    out.u32(diff.serial)
    flags = ((_FLAG_NEW if diff.is_new else 0)
             | (_FLAG_FREED if diff.freed else 0)
             | (_FLAG_NAMED if diff.name is not None else 0))
    out.u8(flags)
    out.u32(diff.version)
    if diff.is_new:
        out.u32(diff.type_serial)
    if diff.name is not None:
        out.text(diff.name)
    # the paper's layout: total diff length in bytes, then RLE sections
    body = _Writer()
    for run in diff.runs:
        body.raw(_RUN_HEADER.pack(run.prim_start, run.prim_count))
        body.blob(run.data)
    encoded_body = body.getvalue()
    out.u32(len(encoded_body))
    out.u32(len(diff.runs))
    out.raw(encoded_body)
    return out.getvalue() if writer is None else b""


def _decode_runs(reader: _Reader, run_count: int, body_end: int) -> List[DiffRun]:
    """Decode RLE sections; the data of each run extends to the next run's
    header, located via sequential parsing (variable-size units make run
    data lengths data-dependent, so runs are parsed back-to-back and the
    *caller's* layout knowledge determines unit boundaries)."""
    runs: List[DiffRun] = []
    # Run data sizes are not individually delimited in the paper's format;
    # we add a per-run byte length so the server can store and splice runs
    # without type knowledge.  (It is still counted in payload bytes.)
    for _ in range(run_count):
        try:
            prim_start, prim_count = _RUN_HEADER.unpack_from(reader.data, reader.offset)
        except struct.error:
            raise WireFormatError("diff buffer truncated in run header") from None
        reader.offset += _RUN_HEADER.size
        data = reader.blob()
        runs.append(DiffRun(prim_start, prim_count, data))
    if reader.offset != body_end:
        raise WireFormatError("block diff body length mismatch")
    return runs


def decode_block_diff(reader: _Reader) -> BlockDiff:
    serial = reader.u32()
    flags = reader.u8()
    version = reader.u32()
    type_serial = reader.u32() if flags & _FLAG_NEW else 0
    name = reader.text() if flags & _FLAG_NAMED else None
    body_length = reader.u32()
    run_count = reader.u32()
    body_end = reader.offset + body_length
    runs = _decode_runs(reader, run_count, body_end)
    return BlockDiff(
        serial=serial,
        runs=runs,
        is_new=bool(flags & _FLAG_NEW),
        freed=bool(flags & _FLAG_FREED),
        type_serial=type_serial,
        name=name,
        version=version,
    )


def encode_segment_diff(diff: SegmentDiff) -> bytes:
    out = _Writer()
    out.text(diff.segment)
    out.u32(diff.from_version)
    out.u32(diff.to_version)
    out.u32(len(diff.new_types))
    for serial, encoded in diff.new_types:
        out.u32(serial)
        out.blob(encoded)
    out.u32(len(diff.block_diffs))
    for block_diff in diff.block_diffs:
        encode_block_diff(block_diff, out)
    encoded = out.getvalue()
    metrics = get_registry()
    metrics.counter("wire.diff.encoded").inc()
    metrics.counter("wire.diff.encoded_bytes").inc(len(encoded))
    metrics.counter("wire.diff.runs_encoded").inc(
        sum(len(bd.runs) for bd in diff.block_diffs))
    return encoded


def decode_segment_diff(data: bytes) -> SegmentDiff:
    metrics = get_registry()
    metrics.counter("wire.diff.decoded").inc()
    metrics.counter("wire.diff.decoded_bytes").inc(len(data))
    reader = _Reader(data)
    segment = reader.text()
    from_version = reader.u32()
    to_version = reader.u32()
    new_types = []
    for _ in range(reader.u32()):
        serial = reader.u32()
        new_types.append((serial, reader.blob()))
    block_diffs = [decode_block_diff(reader) for _ in range(reader.u32())]
    if reader.offset != len(reader.data):
        raise WireFormatError("trailing bytes after segment diff")
    return SegmentDiff(segment, from_version, to_version, block_diffs, new_types)
