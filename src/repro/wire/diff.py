"""Wire-format diffs.

The paper's key departure from RPC marshaling is that the wire format can
carry not just data but *diffs*: concise, machine-independent descriptions
of only the data that changed.  A wire-format block diff consists of the
block's serial number, the diff's length in bytes, and a series of
run-length-encoded changes, each giving the starting point and length of
the change in primitive data units followed by the updated data in wire
format (Figure 3 of the paper).

A :class:`SegmentDiff` aggregates block diffs into the unit the protocol
ships: everything that changed in one segment between two versions,
together with newly created blocks (which carry their type serial and
optional symbolic name), freed blocks, and any type descriptors the
receiver has not seen yet.

Data-plane layout.  A 10%-scattered write over an MB-scale segment
produces hundreds of thousands of small runs, so the codec keeps runs in
*columnar* form end to end: a block diff body is ``run_count`` 12-byte
header rows (``>u4`` prim_start, prim_count, data_len) followed by one
concatenated data section.  Encoding is two buffer splices (one numpy
header array, one payload buffer) and decoding is one ``np.frombuffer``
plus two ``memoryview`` slices — no per-run Python loop and no per-run
copy.  Decoded :class:`BlockDiff` objects expose ``.columns``
(:class:`RunColumns`) for vectorized apply/stamp/re-encode; ``.runs``
materializes :class:`DiffRun` objects lazily for code that wants the
object view.  ``DiffRun.data`` may be ``bytes`` or a ``memoryview``
aliasing the receive buffer; materialization happens only at mutation or
retention boundaries (see :func:`decode_segment_diff`).

The pre-columnar interleaved format (8-byte run header + per-run blob,
nested scratch-Writer encode, per-run copying decode) is kept behind
:func:`set_legacy_dataplane` as the measured baseline for
``benchmarks/bench_datasize.py``.  Total body size is identical in both
formats (12 bytes of framing per run either way), so size accounting and
the paper's diff-length story are unaffected by the toggle.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import WireFormatError
from repro.obs.metrics import get_registry
from repro.wire.codec import (Reader as _Reader, Writer as _Writer,
                              count_bytes_copied)

_U32 = struct.Struct(">I")
_RUN_HEADER = struct.Struct(">II")        # legacy interleaved header
_RUN_HEADER3 = struct.Struct(">III")      # columnar header row
_RUN_HEADER_BYTES = 12
_U32_MAX = 0xFFFFFFFF

# Baseline toggle: when enabled, encode/decode use the pre-columnar
# interleaved format and copying decode so benchmarks can measure the
# old data plane.  The two formats are not interoperable on the wire;
# flip the mode per process (or per benchmark phase), not per peer.
_LEGACY_DATAPLANE = os.environ.get(
    "REPRO_WIRE_LEGACY_DATAPLANE", "") not in ("", "0")


def set_legacy_dataplane(enabled: bool) -> bool:
    """Select the legacy (pre-columnar) diff codec; returns the old mode."""
    global _LEGACY_DATAPLANE
    previous = _LEGACY_DATAPLANE
    _LEGACY_DATAPLANE = bool(enabled)
    return previous


def legacy_dataplane_enabled() -> bool:
    return _LEGACY_DATAPLANE


RunData = Union[bytes, memoryview]


@dataclass
class DiffRun:
    """One RLE change section: start and length in primitive data units."""

    prim_start: int
    prim_count: int
    data: RunData  # the updated units, already in wire format


class RunColumns:
    """Columnar storage for a block diff's runs.

    ``starts``/``counts``/``lens`` are parallel ``int64`` arrays, ``data``
    is the single concatenated payload buffer (``bytes`` or a
    ``memoryview`` over the receive buffer), and ``bounds`` is the
    exclusive prefix sum of ``lens`` (``bounds[i]:bounds[i+1]`` slices run
    *i*'s payload out of ``data``).
    """

    __slots__ = ("starts", "counts", "lens", "bounds", "data")

    def __init__(self, starts: np.ndarray, counts: np.ndarray,
                 lens: np.ndarray, data: RunData,
                 bounds: Optional[np.ndarray] = None):
        self.starts = starts
        self.counts = counts
        self.lens = lens
        self.data = data
        if bounds is None:
            bounds = np.zeros(len(lens) + 1, dtype=np.int64)
            np.cumsum(lens, out=bounds[1:])
        self.bounds = bounds

    @property
    def run_count(self) -> int:
        return int(self.starts.shape[0])

    @property
    def data_bytes(self) -> int:
        return int(self.bounds[-1])

    def covered_units(self) -> int:
        return int(self.counts.sum()) if self.counts.size else 0

    def materialize(self) -> None:
        """Replace a payload view with an owned ``bytes`` copy."""
        if not isinstance(self.data, bytes):
            self.data = bytes(self.data)
            count_bytes_copied(len(self.data))


class _LazyRuns(_SequenceABC):
    """List-like view of :class:`RunColumns`, materialized on first access.

    The server's release path only touches the columns (vectorized apply,
    stamp and re-encode), so the per-run ``DiffRun`` objects — hundreds of
    thousands for an MB-scale scattered write — are never built there.
    Compares equal to any sequence with the same run values, which keeps
    dataclass equality on :class:`BlockDiff` intact.
    """

    __slots__ = ("columns", "_list")

    def __init__(self, columns: RunColumns):
        self.columns = columns
        self._list = None

    def _materialize(self) -> List[DiffRun]:
        if self._list is None:
            cols = self.columns
            data = cols.data
            bounds = cols.bounds.tolist()
            self._list = [
                DiffRun(start, count, data[bounds[i]:bounds[i + 1]])
                for i, (start, count) in enumerate(
                    zip(cols.starts.tolist(), cols.counts.tolist()))
            ]
            if isinstance(data, (bytes, bytearray)):
                # slicing bytes copies; slicing a memoryview does not
                count_bytes_copied(cols.data_bytes)
        return self._list

    def __len__(self) -> int:
        if self._list is not None:
            return len(self._list)
        return self.columns.run_count

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other) -> bool:
        if isinstance(other, _LazyRuns):
            other = other._materialize()
        if not isinstance(other, (list, tuple)):
            try:
                other = list(other)
            except TypeError:
                return NotImplemented
        return self._materialize() == list(other)

    def __repr__(self) -> str:
        return repr(self._materialize())


@dataclass
class BlockDiff:
    """All changes to one block.

    ``is_new`` marks blocks created since the receiver's version; they
    carry the type serial and optional name needed to materialize them.
    ``version`` is the segment version in which the block was last
    modified (server -> client direction; informs locality layout).
    A block diff with ``freed`` set tombstones a deallocated block.

    ``columns`` (when present) is the authoritative columnar form of
    ``runs``; code that *replaces* ``runs`` must construct a fresh
    :class:`BlockDiff` (or clear ``columns``) so the two never diverge.
    """

    serial: int
    runs: Sequence[DiffRun] = field(default_factory=list)
    is_new: bool = False
    freed: bool = False
    type_serial: int = 0
    name: Optional[str] = None
    version: int = 0
    columns: Optional[RunColumns] = field(
        default=None, compare=False, repr=False)

    @property
    def data_bytes(self) -> int:
        """Payload bytes (the paper's per-block 'diff length')."""
        if self.columns is not None:
            return self.columns.data_bytes
        return sum(len(run.data) for run in self.runs)

    def covered_units(self) -> int:
        if self.columns is not None:
            return self.columns.covered_units()
        return sum(run.prim_count for run in self.runs)


def block_diff_from_columns(serial: int, columns: RunColumns, *,
                            is_new: bool = False, freed: bool = False,
                            type_serial: int = 0, name: Optional[str] = None,
                            version: int = 0) -> BlockDiff:
    """Build a BlockDiff whose runs stay columnar until someone asks."""
    return BlockDiff(serial=serial, runs=_LazyRuns(columns), is_new=is_new,
                     freed=freed, type_serial=type_serial, name=name,
                     version=version, columns=columns)


@dataclass
class SegmentDiff:
    """Every change in one segment between two versions."""

    segment: str
    from_version: int  # 0 means "receiver has nothing" (full transfer)
    to_version: int
    block_diffs: List[BlockDiff] = field(default_factory=list)
    new_types: List[Tuple[int, bytes]] = field(default_factory=list)

    @property
    def is_full(self) -> bool:
        return self.from_version == 0

    def payload_bytes(self) -> int:
        """Total data payload across all block diffs."""
        return sum(diff.data_bytes for diff in self.block_diffs)

    def materialize(self) -> None:
        """Copy every payload view into owned ``bytes``.

        The retention boundary: call this before keeping a decoded diff
        alive past the lifetime of the buffer it was decoded from (e.g.
        a recycled receive buffer).  Diffs decoded from immutable
        ``bytes`` never need this — the views pin the buffer.
        """
        for block_diff in self.block_diffs:
            if block_diff.columns is not None:
                block_diff.columns.materialize()
                runs = block_diff.runs
                if isinstance(runs, _LazyRuns):
                    runs._list = None  # re-slice from the owned copy
                continue
            copied = 0
            for run in block_diff.runs:
                if not isinstance(run.data, bytes):
                    run.data = bytes(run.data)
                    copied += len(run.data)
            count_bytes_copied(copied)


# ---------------------------------------------------------------------------
# binary codec
# ---------------------------------------------------------------------------

_FLAG_NEW = 0x01
_FLAG_FREED = 0x02
_FLAG_NAMED = 0x04


def _encode_runs_columnar(out: _Writer, cols: RunColumns) -> None:
    n = cols.run_count
    if n:
        if (int(cols.starts.max()) > _U32_MAX
                or int(cols.counts.max()) > _U32_MAX
                or int(cols.lens.max()) > _U32_MAX):
            raise WireFormatError("diff run field exceeds u32 range")
        headers = np.empty((n, 3), dtype=">u4")
        headers[:, 0] = cols.starts
        headers[:, 1] = cols.counts
        headers[:, 2] = cols.lens
        out.raw(headers.data.cast("B"))
    out.raw(cols.data)
    count_bytes_copied(cols.data_bytes)


def _encode_runs_rows(out: _Writer, runs: Sequence[DiffRun]) -> None:
    pack = _RUN_HEADER3.pack
    for run in runs:
        out.raw(pack(run.prim_start, run.prim_count, len(run.data)))
    total = 0
    for run in runs:
        out.raw(run.data)
        total += len(run.data)
    count_bytes_copied(total)


def _encode_runs_legacy(out: _Writer, runs: Sequence[DiffRun]) -> None:
    # the pre-columnar body: interleaved headers/blobs built in a scratch
    # Writer and re-copied into the output (kept verbatim as the
    # bench_datasize baseline)
    body = _Writer()
    copied = 0
    for run in runs:
        body.raw(_RUN_HEADER.pack(run.prim_start, run.prim_count))
        body.blob(run.data)
        copied += len(run.data)
    encoded_body = body.getvalue()
    out.raw(encoded_body)
    count_bytes_copied(copied + 2 * len(encoded_body))


def encode_block_diff(diff: BlockDiff, writer: Optional[_Writer] = None) -> bytes:
    out = writer if writer is not None else _Writer()
    out.u32(diff.serial)
    flags = ((_FLAG_NEW if diff.is_new else 0)
             | (_FLAG_FREED if diff.freed else 0)
             | (_FLAG_NAMED if diff.name is not None else 0))
    out.u8(flags)
    out.u32(diff.version)
    if diff.is_new:
        out.u32(diff.type_serial)
    if diff.name is not None:
        out.text(diff.name)
    # the paper's layout: total diff length in bytes, then RLE sections —
    # the length word is reserved up front and backpatched once the body
    # has been encoded in place (no scratch buffer, no re-copy)
    body_length_at = out.reserve_u32()
    out.u32(len(diff.runs))
    body_start = out.tell()
    if _LEGACY_DATAPLANE:
        _encode_runs_legacy(out, diff.runs)
    elif diff.columns is not None:
        _encode_runs_columnar(out, diff.columns)
    else:
        _encode_runs_rows(out, diff.runs)
    out.patch_u32(body_length_at, out.tell() - body_start)
    return out.getvalue() if writer is None else b""


def _decode_runs_legacy(reader: _Reader, run_count: int,
                        body_end: int) -> List[DiffRun]:
    """The pre-columnar copying decode (bench_datasize baseline)."""
    runs: List[DiffRun] = []
    copied = 0
    for _ in range(run_count):
        try:
            prim_start, prim_count = _RUN_HEADER.unpack_from(
                reader.data, reader.offset)
        except struct.error:
            raise WireFormatError("diff buffer truncated in run header") from None
        reader.offset += _RUN_HEADER.size
        data = reader.blob()
        copied += len(data)
        runs.append(DiffRun(prim_start, prim_count, data))
    if reader.offset != body_end:
        raise WireFormatError("block diff body length mismatch")
    count_bytes_copied(copied)
    return runs


def _decode_runs_columnar(reader: _Reader, run_count: int,
                          body_length: int) -> RunColumns:
    """Decode the columnar body: header rows, then one data section.

    Run data sizes are not individually delimited in the paper's format;
    the per-run byte length in the header row lets the server store and
    splice runs without type knowledge.  (It is still counted in payload
    bytes.)  One ``frombuffer`` and two views — no per-run work.
    """
    header_bytes = run_count * _RUN_HEADER_BYTES
    if body_length < header_bytes:
        raise WireFormatError("block diff body shorter than run headers")
    if run_count == 0:
        if body_length:
            raise WireFormatError("block diff body length mismatch")
        empty = np.empty(0, dtype=np.int64)
        return RunColumns(empty, empty, empty, b"",
                          np.zeros(1, dtype=np.int64))
    headers = np.frombuffer(reader.raw_view(header_bytes),
                            dtype=">u4").reshape(run_count, 3).astype(np.int64)
    data = reader.raw_view(body_length - header_bytes)
    lens = headers[:, 2]
    bounds = np.zeros(run_count + 1, dtype=np.int64)
    np.cumsum(lens, out=bounds[1:])
    if int(bounds[-1]) != len(data):
        raise WireFormatError("block diff body length mismatch")
    return RunColumns(headers[:, 0], headers[:, 1], lens, data, bounds)


def decode_block_diff(reader: _Reader) -> BlockDiff:
    serial = reader.u32()
    flags = reader.u8()
    version = reader.u32()
    type_serial = reader.u32() if flags & _FLAG_NEW else 0
    name = reader.text() if flags & _FLAG_NAMED else None
    body_length = reader.u32()
    run_count = reader.u32()
    if _LEGACY_DATAPLANE:
        runs: Sequence[DiffRun] = _decode_runs_legacy(
            reader, run_count, reader.offset + body_length)
        columns = None
    else:
        columns = _decode_runs_columnar(reader, run_count, body_length)
        runs = _LazyRuns(columns)
    return BlockDiff(
        serial=serial,
        runs=runs,
        is_new=bool(flags & _FLAG_NEW),
        freed=bool(flags & _FLAG_FREED),
        type_serial=type_serial,
        name=name,
        version=version,
        columns=columns,
    )


def encode_segment_diff_into(out: _Writer, diff: SegmentDiff) -> int:
    """Encode a segment diff into an existing Writer; returns bytes written.

    This is the zero-copy path for embedding a diff in a protocol
    message: the diff is encoded straight into the message buffer instead
    of into scratch bytes that get re-copied (see
    ``messages._encode_optional_diff``).
    """
    start = out.tell()
    out.text(diff.segment)
    out.u32(diff.from_version)
    out.u32(diff.to_version)
    out.u32(len(diff.new_types))
    for serial, encoded in diff.new_types:
        out.u32(serial)
        out.blob(encoded)
    out.u32(len(diff.block_diffs))
    for block_diff in diff.block_diffs:
        encode_block_diff(block_diff, out)
    written = out.tell() - start
    metrics = get_registry()
    metrics.counter("wire.diff.encoded").inc()
    metrics.counter("wire.diff.encoded_bytes").inc(written)
    metrics.counter("wire.diff.runs_encoded").inc(
        sum(len(bd.runs) for bd in diff.block_diffs))
    return written


def encode_segment_diff(diff: SegmentDiff) -> bytes:
    out = _Writer()
    encode_segment_diff_into(out, diff)
    return out.getvalue()


def _buffer_is_writable(data) -> bool:
    if isinstance(data, bytearray):
        return True
    if isinstance(data, memoryview):
        return not data.readonly
    return False


def _decode_segment_diff_body(reader: _Reader, end: int) -> SegmentDiff:
    segment = reader.text()
    from_version = reader.u32()
    to_version = reader.u32()
    new_types = []
    for _ in range(reader.u32()):
        serial = reader.u32()
        new_types.append((serial, reader.blob()))
    block_diffs = [decode_block_diff(reader) for _ in range(reader.u32())]
    if reader.offset != end:
        raise WireFormatError("trailing bytes after segment diff")
    return SegmentDiff(segment, from_version, to_version, block_diffs,
                       new_types)


def decode_segment_diff_from(reader: _Reader, length: int) -> SegmentDiff:
    """Decode a diff in place from ``length`` bytes at the reader's cursor.

    Run payloads come back as views over ``reader.data``; if that buffer
    is mutable (a recyclable receive buffer), the diff is materialized
    before returning so retained views can never alias recycled memory.
    """
    metrics = get_registry()
    metrics.counter("wire.diff.decoded").inc()
    metrics.counter("wire.diff.decoded_bytes").inc(length)
    diff = _decode_segment_diff_body(reader, reader.offset + length)
    if _buffer_is_writable(reader.data):
        diff.materialize()
    return diff


def decode_segment_diff(data) -> SegmentDiff:
    return decode_segment_diff_from(_Reader(data), len(data))
