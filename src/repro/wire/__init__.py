"""Machine-independent wire format: MIPs, diffs, translation, messages."""

from repro.wire.codec import Reader, Writer
from repro.wire.diff import (
    BlockDiff,
    DiffRun,
    SegmentDiff,
    decode_segment_diff,
    encode_segment_diff,
)
from repro.wire.mip import MIP, format_mip, parse_mip
from repro.wire.translate import (
    TranslationContext,
    apply_block,
    apply_range,
    collect_block,
    collect_range,
    wire_size_of_range,
)
from repro.wire import messages

__all__ = [
    "BlockDiff",
    "DiffRun",
    "MIP",
    "Reader",
    "SegmentDiff",
    "TranslationContext",
    "Writer",
    "apply_block",
    "apply_range",
    "collect_block",
    "collect_range",
    "decode_segment_diff",
    "encode_segment_diff",
    "format_mip",
    "messages",
    "parse_mip",
    "wire_size_of_range",
]
