"""Machine-independent wire format: MIPs, diffs, translation, messages."""

from repro.wire.codec import Reader, Writer, count_bytes_copied
from repro.wire.diff import (
    BlockDiff,
    DiffRun,
    RunColumns,
    SegmentDiff,
    block_diff_from_columns,
    decode_segment_diff,
    encode_segment_diff,
    legacy_dataplane_enabled,
    set_legacy_dataplane,
)
from repro.wire.mip import MIP, format_mip, parse_mip
from repro.wire.translate import (
    TranslationContext,
    apply_block,
    apply_range,
    collect_block,
    collect_range,
    wire_size_of_range,
)
from repro.wire import messages

__all__ = [
    "BlockDiff",
    "DiffRun",
    "MIP",
    "Reader",
    "RunColumns",
    "SegmentDiff",
    "TranslationContext",
    "Writer",
    "apply_block",
    "apply_range",
    "block_diff_from_columns",
    "collect_block",
    "collect_range",
    "count_bytes_copied",
    "decode_segment_diff",
    "encode_segment_diff",
    "format_mip",
    "legacy_dataplane_enabled",
    "messages",
    "parse_mip",
    "set_legacy_dataplane",
    "wire_size_of_range",
]
