"""repro.proxy — a caching relay tier for read fan-out.

Readers connect to a :class:`CachingProxy` exactly as they would to an
:class:`~repro.server.InterWeaveServer`; the proxy answers what its
cached version metadata and encoded diffs can prove coherent, and
forwards the rest to the origin.  See ``docs/PROTOCOL.md`` §"Relay
tier" and ``python -m repro.tools.proxy_main``.
"""

from repro.proxy.proxy import CachingProxy, ProxyStats

__all__ = ["CachingProxy", "ProxyStats"]
