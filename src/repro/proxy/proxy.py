"""A caching relay tier between readers and an origin server.

The paper's server stores segments in wire format so updates need no
per-client translation, and it caches encoded diffs because "cached
diffs can often be used to respond to future requests".  Both properties
make a *relay* cheap: encoded ``SegmentDiff``s are immutable and
composable, so a middle tier can answer read traffic from cached bytes
without ever decoding data — and relaxed coherence means a reply that is
a bounded step behind the origin is still a correct reply.

:class:`CachingProxy` is a :class:`~repro.transport.Dispatcher`:
downstream, readers connect to it exactly as to a server (in-process
hub, TCP, or multiplexed TCP — the proxy neither knows nor cares).
Upstream it acts as a single client of the origin, using whatever
connector it is given (typically a
:class:`~repro.transport.MuxConnectionPool`, so all upstream traffic
shares one socket).

What is answered locally vs forwarded (see docs/PROTOCOL.md §"Relay
tier"):

- **read-lock validations** and **fetches** whose coherence bound the
  proxy's cached version provably satisfies (Full/Delta/Temporal,
  evaluated at the proxy with the same
  :class:`~repro.server.coherence.SegmentCoherence` machinery the origin
  uses), including the update diff when the cached diff chain covers the
  client's version range;
- **subscriptions** and **read-lock releases** — pure bookkeeping;
- everything else is forwarded verbatim: opens, write-lock traffic,
  deletes, meta-only fetches, Diff-coherence validations (their bound
  needs the origin's authoritative modified-units accounting), and any
  read the proxy cannot prove fresh or cannot serve from cached bytes.

Freshness has two sources.  When the upstream transport can push, the
proxy subscribes once per segment; each invalidation push triggers **one**
upstream refresh (a read validation on the proxy's own channel) whose
result is cached and then fanned out to every local subscriber — one
origin round trip amortized over N readers.  When upstream cannot push,
the proxy trusts its version for a configurable ``max_staleness`` window
after the last upstream contact; the first request past the window pays
one single-flight refresh on behalf of everyone.  Writes forwarded
through the proxy teach it the new version synchronously (and their
diffs are cached for the read fan-out), so a write-through topology
never waits out the window.

End-to-end semantics survive the extra hop: each downstream client's
forwarded traffic rides a dedicated upstream channel (its own nonce and
sequence space), so origin-side lease attribution and reply-cache
deduplication key on a stable per-client identity, while the proxy-side
transport's own reply cache makes downstream retries replay rather than
re-forward.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Callable, Dict, Optional

from repro.client.routing import Resolver
from repro.coherence import CoherencePolicy
from repro.errors import (
    InterWeaveError,
    SegmentError,
    ServerError,
    TransportError,
)
from repro.obs.metrics import DualCounter, MetricsRegistry, get_registry
from repro.server.coherence import SegmentCoherence
from repro.server.compose import compose_from_cache
from repro.server.diff_cache import DiffCache
from repro.transport.base import Channel, Dispatcher, NotificationSink, NullSink
from repro.util.clock import Clock, WallClock
from repro.wire import SegmentDiff, decode_segment_diff, encode_segment_diff
from repro.wire.messages import (
    COHERENCE_DIFF,
    COHERENCE_FULL,
    LOCK_READ,
    LOCK_WRITE,
    DeleteSegmentReply,
    DeleteSegmentRequest,
    ErrorReply,
    FetchReply,
    FetchRequest,
    GetStatsReply,
    GetStatsRequest,
    LockAcquireReply,
    LockAcquireRequest,
    LockReleaseReply,
    LockReleaseRequest,
    Message,
    NotifyInvalidate,
    OpenSegmentReply,
    OpenSegmentRequest,
    RedirectReply,
    SubscribeReply,
    SubscribeRequest,
    decode_message,
    encode_message,
)

_log = logging.getLogger(__name__)

#: cap on how many learned version timestamps a relay entry retains
_TIMES_KEEP = 512

#: how many WrongServer redirects the relay chases per request before
#: handing the redirect downstream for the client's resolver to sort out
_REDIRECT_FOLLOWS = 4


class ProxyStats:
    """Per-proxy counters, dual-recorded into the registry."""

    def __init__(self, metrics: MetricsRegistry):
        self.hits_counter = DualCounter(metrics.counter(
            "proxy.hits", "reads answered from the relay cache"))
        self.forwards_counter = DualCounter(metrics.counter(
            "proxy.forwards", "requests forwarded to the origin"))
        self.refreshes_counter = DualCounter(metrics.counter(
            "proxy.refreshes", "upstream refresh round trips"))
        self.notifications_counter = DualCounter(metrics.counter(
            "proxy.notifications_pushed",
            "invalidations re-pushed to local subscribers"))
        self.redirects_counter = DualCounter(metrics.counter(
            "proxy.redirects_followed",
            "WrongServer redirects chased to a migrated segment's new origin"))
        self.failovers_counter = DualCounter(metrics.counter(
            "proxy.failovers_followed",
            "unreachable-upstream re-resolves that rebound the relay to a "
            "promoted origin"))

    @property
    def hits(self) -> int:
        return self.hits_counter.local

    @property
    def forwards(self) -> int:
        return self.forwards_counter.local

    @property
    def refreshes(self) -> int:
        return self.refreshes_counter.local

    @property
    def notifications_pushed(self) -> int:
        return self.notifications_counter.local

    @property
    def redirects_followed(self) -> int:
        return self.redirects_counter.local

    @property
    def failovers_followed(self) -> int:
        return self.failovers_counter.local


class _SegmentRelay:
    """The proxy's per-segment state: version knowledge plus local views.

    ``version`` is the highest origin version the proxy has observed
    (reply, push, or refresh); ``data_version`` is the version its cached
    diff chain reaches — the two diverge between an invalidation push and
    the refresh it triggers.  ``lock`` (a leaf lock: never held across an
    upstream request or a downstream push) guards the scalar fields;
    ``refresh_lock`` single-flights upstream refreshes so a thundering
    herd of expired readers costs one origin round trip.
    """

    __slots__ = ("name", "version", "data_version", "fresh_until",
                 "learned_times", "times_floor", "coherence",
                 "upstream_subscribed", "lock", "refresh_lock")

    def __init__(self, name: str):
        self.name = name
        self.version = 0
        self.data_version = 0
        self.fresh_until = float("-inf")
        #: version -> proxy-clock instant it was first learned; the relay's
        #: stand-in for the origin's ``version_times`` (temporal coherence)
        self.learned_times: Dict[int, float] = {}
        #: versions at or below this have had their timestamps pruned
        self.times_floor = 0
        self.coherence = SegmentCoherence()
        self.upstream_subscribed = False
        self.lock = threading.Lock()
        self.refresh_lock = threading.Lock()


class CachingProxy(Dispatcher):
    """Serve read fan-out from a relay replica instead of the origin.

    ``name`` is the server name downstream clients address (segment names
    stay ``name/path`` end to end — the proxy is transparent).
    ``connector(origin, client_id)`` opens upstream channels to the real
    origin; ``origin`` defaults to ``name`` (the usual TCP topology, where
    names are resolved by the connector's address map).

    In a multi-origin cluster the default origin may answer with a
    WrongServer redirect after a segment migrates; the proxy chases it,
    learns the per-segment binding (newest generation wins), and opens
    upstream channels to the new origin, so downstream clients keep a
    single stable address while segments move behind the relay.

    ``max_staleness`` bounds how long the proxy may serve coherence
    decisions without hearing from the origin when upstream cannot push
    (with an upstream subscription, pushes keep it current instead).
    ``0`` forwards every first-touch decision — the proxy still
    deduplicates update bytes, just not round trips.

    ``resolver`` (typically a
    :class:`~repro.cluster.DirectoryResolver`) lets the relay survive an
    origin *failover*, not just a migration: when an upstream request
    dies with :class:`~repro.errors.TransportError`, the relay drops the
    resolver's cached binding, asks again, and — if the cluster promoted
    a backup — closes the dead channels, rebinds every affected segment,
    reopens its own and per-client channels against the new origin,
    re-subscribes for pushes, and re-pushes invalidations to local
    subscribers, so downstream readers never notice the machine loss.
    Without a resolver the relay keeps the old behavior: upstream
    transport errors surface downstream as typed errors.
    """

    def __init__(self, name: str,
                 connector: Callable[[str, str], Channel],
                 origin: Optional[str] = None,
                 sink: Optional[NotificationSink] = None,
                 clock: Optional[Clock] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 diff_cache_bytes: int = 16 * 1024 * 1024,
                 max_staleness: float = 0.05,
                 compose_limit: int = 64,
                 resolver: Optional[Resolver] = None):
        if max_staleness < 0:
            raise ServerError("max_staleness must be >= 0")
        self.name = name
        self.origin = origin if origin is not None else name
        self.connector = connector
        self.sink = sink or NullSink()
        self.clock = clock or WallClock()
        self.max_staleness = max_staleness
        self.compose_limit = compose_limit
        self.metrics = metrics or get_registry()
        self.diff_cache = DiffCache(diff_cache_bytes, metrics=self.metrics)
        self.stats = ProxyStats(self.metrics)
        self._m_requests = self.metrics.counter(
            "proxy.requests", "protocol requests dispatched by the relay")
        self._m_errors = self.metrics.counter(
            "proxy.errors", "relay requests answered with ErrorReply")
        self._m_dispatch = self.metrics.histogram(
            "proxy.dispatch_seconds", help="relay request handling latency")
        self._m_hit_rate = self.metrics.gauge(
            "proxy.hit_rate", "fraction of reads answered without the origin")
        self._m_fanout = self.metrics.gauge(
            "proxy.fanout_subscribers",
            "local subscribers registered across all segments")
        self._entries: Dict[str, _SegmentRelay] = {}
        self._table_lock = threading.Lock()
        #: one upstream channel per (origin, downstream client) pair
        #: (forwarded traffic keeps its own sequence space and lease
        #: identity), plus one proxy-owned channel per origin for
        #: refreshes and subscriptions
        self._up_channels: Dict[tuple, Channel] = {}
        self._channel_lock = threading.Lock()
        self._own_channels: Dict[str, Channel] = {}
        #: segment → (origin, binding generation), learned from
        #: WrongServer redirects; segments not listed live at the
        #: default origin
        self._bindings: Dict[str, tuple] = {}
        self._binding_lock = threading.Lock()
        self.resolver = resolver
        #: serializes failover rebinds (close dead channels, rewrite
        #: bindings) so two requests hitting the dead origin at once do
        #: the teardown exactly once
        self._failover_lock = threading.Lock()
        self._closed = False

    # -- upstream plumbing --------------------------------------------------------

    @property
    def _own_id(self) -> str:
        return f"{self.name}!!relay"

    def _origin_of(self, segment: Optional[str]) -> str:
        """Which origin currently serves ``segment``, by relay knowledge."""
        if segment is not None:
            with self._binding_lock:
                binding = self._bindings.get(segment)
            if binding is not None:
                return binding[0]
        return self.origin

    def _learn_binding(self, segment: str, origin: str,
                       generation: int) -> None:
        """A redirect said ``segment`` moved; newest generation wins."""
        with self._binding_lock:
            current = self._bindings.get(segment)
            if current is not None and generation < current[1]:
                return
            self._bindings[segment] = (origin, generation)
            changed = current is None or current[0] != origin
        if not changed:
            return
        entry = self._lookup(segment)
        if entry is not None:
            with entry.lock:
                # pushes from the old origin are dead and the new origin
                # has never heard of us: re-validate and re-subscribe
                entry.upstream_subscribed = False
                entry.fresh_until = float("-inf")

    def _own(self, origin: Optional[str] = None) -> Channel:
        origin = origin if origin is not None else self.origin
        with self._channel_lock:
            channel = self._own_channels.get(origin)
            if channel is None:
                channel = self.connector(origin, self._own_id)
                if channel.can_push:
                    channel.set_notification_handler(self._on_upstream_push)
                channel.reconnect_listener = self._on_upstream_reconnect
                self._own_channels[origin] = channel
        return channel

    def _client_channel(self, origin: str, client_id: str) -> Channel:
        with self._channel_lock:
            channel = self._up_channels.get((origin, client_id))
            if channel is None:
                # prefixed so that a hub co-hosting both tiers never
                # confuses a downstream client's channel with the relay's
                # upstream one for the same client id
                channel = self.connector(origin, f"{self.name}!{client_id}")
                self._up_channels[(origin, client_id)] = channel
        return channel

    def _own_request(self, request: Message,
                     segment: Optional[str] = None) -> Message:
        origin = self._origin_of(segment)
        failed_over = False
        for _follow in range(1 + _REDIRECT_FOLLOWS):
            try:
                raw = self._own(origin).request(encode_message(request))
            except TransportError:
                if failed_over or segment is None or \
                        not self._failed_over(segment):
                    raise
                failed_over = True
                origin = self._origin_of(segment)
                continue
            reply = decode_message(raw)
            if isinstance(reply, RedirectReply) and segment is not None:
                self.stats.redirects_counter.inc()
                self._learn_binding(reply.segment, reply.origin,
                                    reply.generation)
                origin = reply.origin
                continue
            if isinstance(reply, ErrorReply):
                raise ServerError(reply.message)
            return reply
        raise ServerError(
            f"redirect chase for {segment!r} exceeded "
            f"{_REDIRECT_FOLLOWS} hops")

    def _on_upstream_reconnect(self) -> None:
        """Pushes may have been lost while the upstream link was down:
        forget all freshness until each segment re-validates."""
        with self._table_lock:
            entries = list(self._entries.values())
        for entry in entries:
            with entry.lock:
                entry.upstream_subscribed = False
                entry.fresh_until = float("-inf")

    # -- failover re-resolution ---------------------------------------------------

    def _failed_over(self, segment: str) -> bool:
        """An upstream request died with TransportError: ask the resolver
        whether the segment now lives somewhere else (the relay-side
        mirror of the client's one-shot re-resolve).

        Returns True only when the re-resolved origin *differs* from the
        one the relay was using — the cluster promoted a backup (or
        rebound the segment) and a retry there can succeed.  The rebind
        itself (channel teardown, binding rewrite, re-subscription) is
        done by :meth:`_rebind_after_failover` before this returns, so
        the caller's retry already routes to the new origin.
        """
        if self.resolver is None or self._closed:
            return False
        dead = self._origin_of(segment)
        try:
            self.resolver.invalidate(segment)
            fresh = self.resolver.resolve(segment)
        except (SegmentError, TransportError):
            return False
        if fresh == dead:
            return False  # nothing to fail over to
        self._rebind_after_failover(dead, fresh)
        self.stats.failovers_counter.inc()
        _log.info("relay %r failed over %r: %r -> %r",
                  self.name, segment, dead, fresh)
        return True

    def _rebind_after_failover(self, dead: str, fresh: str) -> None:
        """Tear down everything that routes through ``dead`` and rebind
        it to the re-resolved origin.

        Order matters on hub-style transports that register channels by
        client id: the dead channels must be *closed first*, otherwise
        closing them after their replacements exist would deregister the
        replacements (same client id) and pushes would vanish silently.
        """
        reattach: list = []
        with self._failover_lock:
            # 1. close every channel pointed at the dead origin (before
            #    any replacement is opened — see docstring)
            with self._channel_lock:
                casualties = []
                own = self._own_channels.pop(dead, None)
                if own is not None:
                    casualties.append(own)
                for key in [k for k in self._up_channels if k[0] == dead]:
                    casualties.append(self._up_channels.pop(key))
            for channel in casualties:
                try:
                    channel.close()
                except Exception:  # noqa: BLE001 — best-effort teardown
                    pass
            # 2. rebind every segment the relay routes at the dead origin,
            #    re-resolving each (a promotion rebinds them all to the
            #    backup; a partial rebind may scatter them)
            with self._table_lock:
                known = list(self._entries)
            with self._binding_lock:
                affected = {segment for segment, (origin, _generation)
                            in self._bindings.items() if origin == dead}
            affected.update(s for s in known if self._origin_of(s) == dead)
            generation_of = getattr(self.resolver, "generation_of", None)
            for segment in sorted(affected):
                try:
                    self.resolver.invalidate(segment)
                    target = self.resolver.resolve(segment)
                except (SegmentError, TransportError):
                    target = fresh
                generation = 0
                if callable(generation_of):
                    try:
                        generation = int(generation_of(segment))
                    except (InterWeaveError, TypeError, ValueError):
                        generation = 0
                with self._binding_lock:
                    current = self._bindings.get(segment)
                    if current is not None:
                        # a stale redirect must never resurrect the dead
                        # origin, whatever generation the resolver knows
                        generation = max(generation, current[1] + 1)
                    self._bindings[segment] = (target, generation)
                entry = self._lookup(segment)
                if entry is not None:
                    with entry.lock:
                        # pushes from the dead origin are gone and the new
                        # origin has never heard of us: nothing is fresh
                        # until we re-validate and re-subscribe
                        entry.upstream_subscribed = False
                        entry.fresh_until = float("-inf")
                    if entry.coherence.subscriber_count():
                        reattach.append(entry)
        # 3. re-attach push fan-out asynchronously: refresh + re-subscribe
        #    each entry with local subscribers, then re-push invalidations.
        #    Not inline — the failover may have been detected *inside* a
        #    refresh (refresh_lock held), and the retried request itself
        #    re-subscribes its own segment on the way out.
        if reattach:
            threading.Thread(target=self._reattach, args=(reattach,),
                             name=f"proxy-reattach-{self.name}",
                             daemon=True).start()

    def _reattach(self, entries) -> None:
        for entry in entries:
            if self._closed:
                return
            try:
                self._refresh(entry, force=True)
            except InterWeaveError:
                _log.warning("failover re-attach refresh for %r failed",
                             entry.name, exc_info=True)
                continue
            self._push_local_invalidations(entry)

    # -- segment table ------------------------------------------------------------

    def _lookup(self, segment: str) -> Optional[_SegmentRelay]:
        with self._table_lock:
            return self._entries.get(segment)

    def _ensure_entry(self, segment: str) -> _SegmentRelay:
        with self._table_lock:
            entry = self._entries.get(segment)
            if entry is None:
                entry = _SegmentRelay(segment)
                self._entries[segment] = entry
        return entry

    def _drop_entry(self, segment: str) -> None:
        with self._table_lock:
            self._entries.pop(segment, None)
        self.diff_cache.invalidate_segment(segment)

    # -- dispatcher entry point ---------------------------------------------------

    def dispatch(self, client_id: str, data: bytes) -> bytes:
        started = time.perf_counter()
        self._m_requests.inc()
        try:
            request = decode_message(data)
            reply = self._handle(client_id, request, data)
        except InterWeaveError as exc:
            self._m_errors.inc()
            reply = ErrorReply(str(exc))
        except Exception as exc:  # noqa: BLE001 — must answer, not unwind
            self._m_errors.inc()
            _log.exception("unhandled exception relaying request from %r",
                           client_id)
            reply = ErrorReply(
                f"internal proxy error: {type(exc).__name__}: {exc}")
        self._m_dispatch.observe(time.perf_counter() - started)
        return encode_message(reply)

    def _handle(self, client_id: str, request: Message, raw: bytes) -> Message:
        if isinstance(request, GetStatsRequest):
            return self._get_stats()
        if isinstance(request, SubscribeRequest):
            return self._subscribe(client_id, request)
        if isinstance(request, LockAcquireRequest) and request.mode == LOCK_READ:
            return self._validate_read(client_id, request, raw)
        if isinstance(request, LockReleaseRequest) and request.mode == LOCK_READ:
            return self._release_read(client_id, request, raw)
        if isinstance(request, FetchRequest) and not request.meta_only:
            return self._fetch(client_id, request, raw)
        # opens, write-lock traffic, deletes, meta-only fetches: the
        # origin is authoritative
        return self._forward(client_id, request, raw)

    # -- forwarding ---------------------------------------------------------------

    def _forward(self, client_id: str, request: Message, raw: bytes) -> Message:
        segment = getattr(request, "segment", None)
        origin = self._origin_of(segment)
        failed_over = False
        reply: Message = ErrorReply(
            f"redirect chase for {segment!r} exceeded {_REDIRECT_FOLLOWS} hops")
        for _follow in range(1 + _REDIRECT_FOLLOWS):
            channel = self._client_channel(origin, client_id)
            try:
                reply = decode_message(channel.request(raw))
            except TransportError:
                if failed_over or segment is None or \
                        not self._failed_over(segment):
                    raise
                failed_over = True
                origin = self._origin_of(segment)
                continue
            if not (isinstance(reply, RedirectReply) and segment is not None):
                break
            self.stats.redirects_counter.inc()
            self._learn_binding(reply.segment, reply.origin, reply.generation)
            origin = reply.origin
        # a RedirectReply that survives the chase goes downstream: the
        # client's own resolver is the authority of last resort
        self.stats.forwards_counter.inc()
        self._update_hit_rate()
        try:
            self._learn_from(client_id, request, reply)
        except InterWeaveError:
            # learning is an optimization; the reply is already correct
            _log.exception("proxy failed to absorb a forwarded reply")
        return reply

    def _learn_from(self, client_id: str, request: Message,
                    reply: Message) -> None:
        """Absorb whatever a forwarded reply reveals about the origin:
        the current version (freshness), update/write diffs (cache
        warm-up), and the client's resulting view (local staleness
        decisions)."""
        if isinstance(reply, ErrorReply):
            return
        now = self.clock.now()
        if isinstance(request, OpenSegmentRequest) and \
                isinstance(reply, OpenSegmentReply):
            entry = self._ensure_entry(request.segment)
            with entry.lock:
                self._observe_version(entry, reply.version, now)
        elif isinstance(request, LockAcquireRequest) and \
                isinstance(reply, LockAcquireReply):
            entry = self._ensure_entry(request.segment)
            policy = CoherencePolicy(request.coherence_kind,
                                     request.coherence_param)
            with entry.lock:
                self._observe_version(entry, reply.version, now)
                if reply.diff is not None:
                    self._absorb_diff(entry, reply.diff)
                if reply.granted:
                    if reply.diff is not None:
                        entry.coherence.on_client_updated(
                            client_id, reply.version, policy)
                    else:
                        self._sync_view(entry, client_id,
                                        request.client_version, policy)
        elif isinstance(request, LockReleaseRequest) and \
                isinstance(reply, LockReleaseReply) and \
                request.mode == LOCK_WRITE:
            entry = self._ensure_entry(request.segment)
            fanout = False
            with entry.lock:
                previous = entry.version
                self._observe_version(entry, reply.version, now)
                diff = request.diff
                if diff is not None and reply.version > diff.from_version and \
                        (diff.block_diffs or diff.new_types):
                    # stamp and cache the writer's diff exactly as the
                    # origin does: it is the precise update every other
                    # reader of this segment needs next
                    for block_diff in diff.block_diffs:
                        block_diff.version = reply.version
                    diff.to_version = reply.version
                    self._absorb_diff(entry, diff)
                    modified = sum(bd.covered_units()
                                   for bd in diff.block_diffs)
                    entry.coherence.on_new_version(modified)
                    entry.coherence.on_client_updated(
                        client_id, reply.version,
                        entry.coherence.view(client_id).policy)
                    fanout = reply.version > previous
            if fanout:
                # a write through the proxy re-propagates to local
                # subscribers even when upstream cannot push
                self._push_local_invalidations(entry)
        elif isinstance(request, FetchRequest) and isinstance(reply, FetchReply):
            entry = self._ensure_entry(request.segment)
            with entry.lock:
                self._observe_version(entry, reply.version, now)
                if reply.diff is not None:
                    self._absorb_diff(entry, reply.diff)
                    entry.coherence.on_client_updated(
                        client_id, reply.version,
                        entry.coherence.view(client_id).policy)
        elif isinstance(request, DeleteSegmentRequest) and \
                isinstance(reply, DeleteSegmentReply):
            if reply.deleted:
                self._drop_entry(request.segment)

    def _absorb_diff(self, entry: _SegmentRelay, diff: SegmentDiff) -> None:
        """Cache an encoded diff; caller holds ``entry.lock``."""
        self.diff_cache.put(entry.name, diff.from_version, diff.to_version,
                            encode_segment_diff(diff))
        if diff.from_version <= entry.data_version:
            entry.data_version = max(entry.data_version, diff.to_version)

    def _observe_version(self, entry: _SegmentRelay, version: int,
                         now: float) -> None:
        """An upstream reply or push named this origin version just now;
        caller holds ``entry.lock``."""
        if version > entry.version:
            entry.version = version
        entry.learned_times.setdefault(version, now)
        if len(entry.learned_times) > _TIMES_KEEP:
            keep = sorted(entry.learned_times)[len(entry.learned_times) // 2:]
            entry.times_floor = max(entry.times_floor, keep[0] - 1)
            entry.learned_times = {v: entry.learned_times[v] for v in keep}
        entry.fresh_until = max(entry.fresh_until, now + self.max_staleness)

    # -- freshness ----------------------------------------------------------------

    def _fresh(self, entry: _SegmentRelay, now: float) -> bool:
        """May ``entry.version`` be trusted as origin-current?

        Caller holds ``entry.lock``.  True within the staleness window of
        the last upstream contact, or while an upstream subscription is
        live *and* the last push has been fully absorbed (a failed
        refresh leaves ``data_version`` behind, which drops us back to
        demand refreshing until one succeeds — necessary because the
        origin suppresses further pushes until the relay revalidates).
        """
        if now <= entry.fresh_until:
            return True
        return (entry.upstream_subscribed
                and entry.data_version >= entry.version)

    def _ensure_fresh(self, entry: _SegmentRelay) -> None:
        with entry.lock:
            if self._fresh(entry, self.clock.now()):
                return
        self._refresh(entry)

    def _refresh(self, entry: _SegmentRelay, force: bool = False) -> None:
        """One upstream read validation, single-flighted per segment.

        Uses a read validation rather than a fetch because validation is
        the request that resets the origin's ``notified`` flag for the
        relay's subscription — without that, the origin would suppress
        every push after the first.
        """
        with entry.refresh_lock:
            with entry.lock:
                if not force and self._fresh(entry, self.clock.now()):
                    return  # another thread already paid for the refresh
                base = entry.data_version
            reply = self._own_request(LockAcquireRequest(
                entry.name, LOCK_READ, self._own_id, client_version=base,
                coherence_kind=COHERENCE_FULL), segment=entry.name)
            if not isinstance(reply, LockAcquireReply):
                raise ServerError(
                    f"origin answered a refresh with {type(reply).__name__}")
            self.stats.refreshes_counter.inc()
            now = self.clock.now()
            with entry.lock:
                self._observe_version(entry, reply.version, now)
                if reply.diff is not None:
                    self._absorb_diff(entry, reply.diff)
                else:
                    entry.data_version = max(entry.data_version, reply.version)
            self._ensure_upstream_subscription(entry)

    def _ensure_upstream_subscription(self, entry: _SegmentRelay) -> None:
        """Subscribe the relay itself upstream (push transports only), so
        one origin push covers every local subscriber."""
        if not self._own(self._origin_of(entry.name)).can_push:
            return
        with entry.lock:
            if entry.upstream_subscribed:
                return
        reply = self._own_request(
            SubscribeRequest(entry.name, self._own_id, True),
            segment=entry.name)
        if isinstance(reply, SubscribeReply) and reply.enabled:
            with entry.lock:
                entry.upstream_subscribed = True

    # -- upstream pushes ----------------------------------------------------------

    def _on_upstream_push(self, data: bytes) -> None:
        """The origin invalidated a segment: refresh once, re-push to all
        local subscribers whose bound broke."""
        try:
            message = decode_message(data)
        except InterWeaveError:
            _log.warning("undecodable push from origin dropped")
            return
        if not isinstance(message, NotifyInvalidate):
            return
        entry = self._lookup(message.segment)
        if entry is None:
            return
        with entry.lock:
            self._observe_version(entry, message.version, self.clock.now())
        try:
            self._refresh(entry, force=True)
        except InterWeaveError:
            # decisions can still ride the pushed version number; data
            # requests will forward until a refresh succeeds
            _log.warning("refresh after invalidation push failed",
                         exc_info=True)
        self._push_local_invalidations(entry)

    def _push_local_invalidations(self, entry: _SegmentRelay) -> None:
        now = self.clock.now()
        with entry.lock:
            version = entry.version
            stale = entry.coherence.stale_subscribers(
                version, 0, now,
                lambda v: self._superseded_at(entry, v))
        if not stale:
            return
        message = encode_message(NotifyInvalidate(entry.name, version))
        for view in stale:
            if self.sink.push(view.client_id, message):
                if view.version < version:
                    view.notified = True
                self.stats.notifications_counter.inc()

    # -- the staleness decision ---------------------------------------------------

    def _superseded_at(self, entry: _SegmentRelay,
                       client_version: int) -> Optional[float]:
        """When did ``client_version`` stop being current, by relay
        knowledge?  Caller holds ``entry.lock``.

        The relay learns versions later than the origin created them, so
        exact times are not always known.  The estimate errs toward
        *earlier* (more stale): if the successor's time is unknown, the
        earliest learn-time of any later version bounds it from above,
        and a version below the pruning floor is treated as superseded
        forever ago.
        """
        exact = entry.learned_times.get(client_version + 1)
        if exact is not None:
            return exact
        if client_version >= entry.version:
            return None  # still current
        if client_version < entry.times_floor:
            return float("-inf")
        later = [when for version, when in entry.learned_times.items()
                 if version > client_version]
        return min(later) if later else float("-inf")

    def _sync_view(self, entry: _SegmentRelay, client_id: str,
                   client_version: int, policy: CoherencePolicy) -> None:
        """Record policy/version without resetting the Diff counter
        (mirrors the origin's ``_sync_view``)."""
        view = entry.coherence.view(client_id)
        view.policy = policy
        view.version = client_version
        view.notified = False

    # -- locally served reads -----------------------------------------------------

    def _validate_read(self, client_id: str, request: LockAcquireRequest,
                       raw: bytes) -> Message:
        policy = CoherencePolicy(request.coherence_kind,
                                 request.coherence_param)
        if policy.kind == COHERENCE_DIFF:
            # the Diff bound is defined against the origin's authoritative
            # modified-units accounting; evaluating it here would be a guess
            return self._forward(client_id, request, raw)
        entry = self._lookup(request.segment)
        if entry is None:
            return self._forward(client_id, request, raw)
        try:
            self._ensure_fresh(entry)
        except InterWeaveError:
            return self._forward(client_id, request, raw)
        now = self.clock.now()
        with entry.lock:
            version = entry.version
            if request.client_version > version:
                stale = None  # client knows a newer version than the relay
            else:
                view = entry.coherence.view(client_id)
                if view.version != request.client_version:
                    # relay bookkeeping does not describe this cache
                    # (restart or first contact): be conservative
                    stale = request.client_version < version
                else:
                    view.policy = policy
                    stale = entry.coherence.is_stale(
                        view, version, 0, now,
                        self._superseded_at(entry, request.client_version))
        if stale is None:
            return self._forward(client_id, request, raw)
        if not stale:
            with entry.lock:
                self._sync_view(entry, client_id, request.client_version,
                                policy)
            self._count_hit()
            return LockAcquireReply(granted=True, version=version,
                                    lease_remaining=0.0, diff=None)
        diff = self._cached_update(entry, request.client_version, version)
        if diff is None:
            return self._forward(client_id, request, raw)
        with entry.lock:
            entry.coherence.on_client_updated(client_id, version, policy)
        self._count_hit()
        return LockAcquireReply(granted=True, version=version,
                                lease_remaining=0.0, diff=diff)

    def _fetch(self, client_id: str, request: FetchRequest,
               raw: bytes) -> Message:
        entry = self._lookup(request.segment)
        if entry is None:
            return self._forward(client_id, request, raw)
        try:
            self._ensure_fresh(entry)
        except InterWeaveError:
            return self._forward(client_id, request, raw)
        with entry.lock:
            version = entry.version
        if request.client_version > version:
            return self._forward(client_id, request, raw)
        if request.client_version >= version:
            self._count_hit()
            return FetchReply(version=version, diff=None)
        diff = self._cached_update(entry, request.client_version, version)
        if diff is None:
            return self._forward(client_id, request, raw)
        with entry.lock:
            view = entry.coherence.view(client_id)
            entry.coherence.on_client_updated(client_id, version, view.policy)
        self._count_hit()
        return FetchReply(version=version, diff=diff)

    def _release_read(self, client_id: str, request: LockReleaseRequest,
                      raw: bytes) -> Message:
        entry = self._lookup(request.segment)
        if entry is None:
            return self._forward(client_id, request, raw)
        with entry.lock:
            version = entry.version
        self._count_hit()
        return LockReleaseReply(version=version)

    def _cached_update(self, entry: _SegmentRelay, from_version: int,
                       to_version: int) -> Optional[SegmentDiff]:
        """The update diff from cached bytes, or None (→ forward)."""
        if from_version >= to_version:
            return None
        encoded = self.diff_cache.get(entry.name, from_version, to_version)
        if encoded is not None:
            return decode_segment_diff(encoded)
        diff = compose_from_cache(self.diff_cache, entry.name, from_version,
                                  to_version, max_span=self.compose_limit)
        if diff is not None:
            self.diff_cache.put(entry.name, from_version, to_version,
                                encode_segment_diff(diff))
        return diff

    # -- subscriptions ------------------------------------------------------------

    def _subscribe(self, client_id: str, request: SubscribeRequest) -> Message:
        entry = self._lookup(request.segment)
        if entry is None:
            # a subscription is only meaningful for a segment the origin
            # has; open it (without creating) to materialize the relay entry
            reply = self._own_request(
                OpenSegmentRequest(request.segment, create=False,
                                   client_id=self._own_id),
                segment=request.segment)
            if not isinstance(reply, OpenSegmentReply):
                raise ServerError(
                    f"origin answered an open with {type(reply).__name__}")
            entry = self._ensure_entry(request.segment)
            with entry.lock:
                self._observe_version(entry, reply.version, self.clock.now())
        entry.coherence.subscribe(client_id, request.enable)
        if request.enable:
            self._ensure_upstream_subscription(entry)
        with self._table_lock:
            entries = list(self._entries.values())
        self._m_fanout.set(sum(e.coherence.subscriber_count()
                               for e in entries))
        return SubscribeReply(enabled=request.enable)

    # -- introspection ------------------------------------------------------------

    def _count_hit(self) -> None:
        self.stats.hits_counter.inc()
        self._update_hit_rate()

    def _update_hit_rate(self) -> None:
        hits = self.stats.hits
        total = hits + self.stats.forwards
        if total:
            self._m_hit_rate.set(hits / total)

    def _get_stats(self) -> Message:
        return GetStatsReply(json.dumps(self.stats_snapshot(), sort_keys=True))

    def stats_snapshot(self) -> dict:
        """Mirror of the origin's snapshot shape (``server`` + ``metrics``
        sections, so the stats CLI renders a proxy unchanged) plus a
        ``proxy`` section with the relay-specific numbers."""
        with self._table_lock:
            entries = dict(self._entries)
        segments = {}
        for name, entry in entries.items():
            with entry.lock:
                segments[name] = {
                    "version": entry.version,
                    "data_version": entry.data_version,
                    "upstream_subscribed": entry.upstream_subscribed,
                    "subscribers": entry.coherence.subscriber_count(),
                }
        hits, forwards = self.stats.hits, self.stats.forwards
        with self._binding_lock:
            bindings = {segment: {"origin": origin, "generation": generation}
                        for segment, (origin, generation)
                        in sorted(self._bindings.items())}
        return {
            "server": {"name": self.name, "segments": segments},
            "proxy": {
                "origin": self.origin,
                "hits": hits,
                "forwards": forwards,
                "refreshes": self.stats.refreshes,
                "notifications_pushed": self.stats.notifications_pushed,
                "redirects_followed": self.stats.redirects_followed,
                "failovers_followed": self.stats.failovers_followed,
                "bindings": bindings,
                "hit_rate": hits / (hits + forwards) if hits + forwards else 0.0,
                "diff_cache_bytes": self.diff_cache.used_bytes,
            },
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        """Close every upstream channel (downstream transports are owned
        by whoever built them)."""
        if self._closed:
            return
        self._closed = True
        with self._channel_lock:
            channels = list(self._up_channels.values())
            channels.extend(self._own_channels.values())
            self._up_channels.clear()
            self._own_channels.clear()
        for channel in channels:
            try:
                channel.close()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
