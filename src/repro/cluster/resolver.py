"""Client-side directory resolution.

:class:`DirectoryResolver` plugs into
:class:`~repro.client.InterWeaveClient` where the static URL-prefix rule
used to be.  It asks a :class:`~repro.cluster.SegmentDirectory` (over
any transport) where a segment lives, then caches the binding together
with its generation stamp, so the steady state costs zero directory
round trips.  When a server answers a request with a WrongServer
redirect, the client calls :meth:`on_redirect` and the cache entry is
replaced — but only if the redirect's generation is at least as new as
the cached one, so a stale tombstone can never pull traffic backwards.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from repro.client.routing import Resolver
from repro.errors import SegmentError, ServerError
from repro.transport.base import Channel
from repro.wire.messages import (
    DirectoryLookupReply,
    DirectoryLookupRequest,
    ErrorReply,
    decode_message,
    encode_message,
)


class DirectoryResolver(Resolver):
    """Resolve segment names through a segment directory service.

    ``connector(server_name, client_id)`` is the same factory the client
    itself uses, so the resolver works over an in-process hub in tests
    and over TCP in a real deployment without code changes.
    """

    def __init__(self, connector: Callable[[str, str], Channel],
                 directory: str = "directory",
                 client_id: str = "resolver"):
        self.connector = connector
        self.directory = directory
        self.client_id = client_id
        self._channel: Optional[Channel] = None
        self._cache: Dict[str, Tuple[str, int]] = {}
        self._lock = threading.Lock()

    # -- Resolver interface -------------------------------------------------------

    def resolve(self, segment_name: str) -> str:
        if not segment_name:
            raise SegmentError("segment name must be non-empty")
        with self._lock:
            cached = self._cache.get(segment_name)
        if cached is not None:
            return cached[0]
        origin, generation = self._lookup(segment_name)
        with self._lock:
            # A redirect may have landed while the lookup was in flight;
            # newest generation wins either way.
            current = self._cache.get(segment_name)
            if current is None or generation >= current[1]:
                self._cache[segment_name] = (origin, generation)
            return self._cache[segment_name][0]

    def on_redirect(self, segment_name: str, origin: str,
                    generation: int) -> None:
        with self._lock:
            current = self._cache.get(segment_name)
            if current is None or generation >= current[1]:
                self._cache[segment_name] = (origin, generation)

    def close(self) -> None:
        with self._lock:
            channel, self._channel = self._channel, None
            self._cache.clear()
        if channel is not None:
            channel.close()

    # -- internals ----------------------------------------------------------------

    def generation_of(self, segment_name: str) -> int:
        """The cached binding generation (0 when nothing is cached)."""
        with self._lock:
            cached = self._cache.get(segment_name)
        return cached[1] if cached is not None else 0

    def invalidate(self, segment_name: str) -> None:
        """Forget a cached binding; the next resolve asks the directory."""
        with self._lock:
            self._cache.pop(segment_name, None)

    def _directory_channel(self) -> Channel:
        with self._lock:
            if self._channel is None:
                self._channel = self.connector(self.directory,
                                               f"{self.client_id}!dir")
            return self._channel

    def _lookup(self, segment_name: str) -> Tuple[str, int]:
        channel = self._directory_channel()
        raw = channel.request(encode_message(
            DirectoryLookupRequest(segment=segment_name,
                                   client_id=self.client_id)))
        reply = decode_message(raw)
        if isinstance(reply, ErrorReply):
            raise SegmentError(
                f"directory cannot place {segment_name!r}: {reply.message}")
        if not isinstance(reply, DirectoryLookupReply):
            raise ServerError(
                f"unexpected directory reply {type(reply).__name__}")
        return reply.origin, reply.generation
