"""Consistent hashing over origin servers.

The directory's default placement policy: each origin contributes
``replicas`` virtual points on a 64-bit ring (hashes of ``"name#k"``),
and a segment lands on the first point clockwise of its own hash.
Adding or removing one origin therefore remaps only the segments whose
arc it owned — the property ``rebalance()`` relies on to keep membership
changes proportional to 1/N of the namespace.

Deterministic (MD5, no process salt): every directory replica and every
test computes the same placement for the same membership.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Iterable, List, Tuple

from repro.errors import ServerError


def _point(key: str) -> int:
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8],
                          "big")


class HashRing:
    """A consistent-hash ring mapping string keys to origin names."""

    def __init__(self, origins: Iterable[str] = (), replicas: int = 64):
        if replicas <= 0:
            raise ServerError("replicas must be positive")
        self.replicas = replicas
        self._origins: set = set()
        #: sorted (point, origin) pairs — the ring itself — plus the
        #: points alone, kept in step for bisecting lookups
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for origin in origins:
            self.add(origin)

    def __len__(self) -> int:
        return len(self._origins)

    def __contains__(self, origin: str) -> bool:
        return origin in self._origins

    @property
    def origins(self) -> List[str]:
        return sorted(self._origins)

    def add(self, origin: str) -> bool:
        """Add an origin; returns False if it was already a member."""
        if not origin:
            raise ServerError("origin name must be non-empty")
        if origin in self._origins:
            return False
        self._origins.add(origin)
        for replica in range(self.replicas):
            insort(self._points, (_point(f"{origin}#{replica}"), origin))
        self._keys = [point for point, _ in self._points]
        return True

    def remove(self, origin: str) -> bool:
        """Remove an origin; returns False if it was not a member."""
        if origin not in self._origins:
            return False
        self._origins.discard(origin)
        self._points = [p for p in self._points if p[1] != origin]
        self._keys = [point for point, _ in self._points]
        return True

    def lookup(self, key: str) -> str:
        """The origin owning ``key``: first ring point clockwise."""
        if not self._points:
            raise ServerError("hash ring has no origins")
        index = bisect_right(self._keys, _point(key))
        if index == len(self._points):
            index = 0  # wrapped past the highest point
        return self._points[index][1]
