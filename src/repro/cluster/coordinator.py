"""Live segment migration between origins.

:class:`ClusterCoordinator` drives the move protocol the servers expose
as MigrateOut / MigrateIn / MigrateCommit / MigrateAbort, and keeps the
:class:`~repro.cluster.SegmentDirectory` honest about where the data is:

1. **Freeze** — MigrateOut asks the source to install the migration
   sentinel writer.  If a client holds the write lease the source
   refuses ("write-locked; migration deferred") and the coordinator
   backs off and retries; once frozen, writer acquires are denied
   (``granted=False``) and clients sit in their normal retry loop,
   so in-flight work stalls instead of failing.
2. **Transfer** — the frozen reply carries the full versioned state
   (the checkpoint codec) plus the segment's diff-cache entries, and
   MigrateIn installs both at the target.  Any failure here aborts:
   the source thaws and nothing has changed.
3. **Rebind** — the directory binds the segment to the target, bumping
   the binding generation.
4. **Commit** — MigrateCommit deletes the segment at the source and
   leaves a ``(target, generation)`` tombstone; every later request
   for the segment gets a RedirectReply that clients and relays chase
   through their resolvers.

The commit order matters: the directory is updated *before* the source
starts redirecting, so a client that chases a redirect always finds the
directory already pointing at the target (or newer).
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Optional

from repro.cluster.directory import SegmentDirectory
from repro.errors import ServerError, TransportError
from repro.transport.base import Channel
from repro.util.clock import Clock, VirtualClock, WallClock
from repro.wire.messages import (
    REPL_PROMOTE,
    ErrorReply,
    Message,
    MigrateAbortRequest,
    MigrateAck,
    MigrateCommitRequest,
    MigrateInRequest,
    MigrateOutReply,
    MigrateOutRequest,
    ReplicateAck,
    ReplicateAppendRequest,
    decode_message,
    encode_message,
)

import time

_log = logging.getLogger(__name__)


class ClusterCoordinator:
    """Drives live migrations and ring rebalancing for one directory.

    The coordinator holds the directory *object* (they live in the same
    control-plane process) and talks to origins over the same connector
    the clients use.  Installing the coordinator also wires it up as the
    directory's ``migrator``, so a ``DIR_MIGRATE`` directory update sent
    over the wire lands here.
    """

    def __init__(self, directory: SegmentDirectory,
                 connector: Callable[[str, str], Channel],
                 client_id: str = "!cluster",
                 clock: Optional[Clock] = None,
                 freeze_retry_interval: float = 0.005,
                 freeze_retry_limit: int = 400):
        self.directory = directory
        self.connector = connector
        self.client_id = client_id
        self.clock = clock or WallClock()
        self.freeze_retry_interval = freeze_retry_interval
        self.freeze_retry_limit = freeze_retry_limit
        self._channels: Dict[str, Channel] = {}
        directory.migrator = self.migrate

    # -- migration ----------------------------------------------------------------

    def migrate(self, segment: str, target: str, pin: bool = True) -> int:
        """Move ``segment`` to ``target`` live; returns the new binding
        generation (the current one when it is already there)."""
        source, generation, _pinned = self.directory.lookup(segment)
        if target not in self.directory.ring:
            raise ServerError(f"unknown origin {target!r}")
        if source == target:
            return generation

        out = self._freeze(source, segment)

        try:
            self._request(target, MigrateInRequest(
                segment=segment, payload=out.payload, diffs=out.diffs,
                client_id=self.client_id))
        except (ServerError, TransportError):
            self._thaw(source, segment)
            raise

        generation = self.directory.bind(segment, target, pinned=pin)
        self._request(source, MigrateCommitRequest(
            segment=segment, target=target, generation=generation,
            client_id=self.client_id))
        self.directory.record_migration()
        return generation

    def rebalance(self) -> int:
        """Move every unpinned segment the ring now places elsewhere;
        returns how many segments moved."""
        moved = 0
        for segment, _current, target in self.directory.plan_rebalance():
            self.migrate(segment, target, pin=False)
            moved += 1
        return moved

    def remove_origin(self, origin: str) -> int:
        """Drain ``origin`` (migrate its segments to their ring homes
        with the origin already excluded) and drop it from the ring;
        returns how many segments moved off it."""
        self.directory.remove_origin(origin)
        moved = 0
        try:
            for segment in self.directory.bindings_on(origin):
                target = self.directory.ring.lookup(segment)
                self.migrate(segment, target, pin=False)
                moved += 1
        except Exception:
            # Put the origin back so its remaining segments stay
            # reachable through the ring-consistent directory.
            self.directory.add_origin(origin)
            raise
        return moved

    def promote_backup(self, failed: str, backup: str, sender=None,
                       drain_timeout: float = 5.0) -> int:
        """Fail ``failed`` over to its replicating ``backup``.

        When the primary process is still alive (planned failover, or a
        machine partition where only the serving port died), pass its
        :class:`~repro.replication.ReplicationSender` as ``sender``: the
        coordinator drains the queued replication backlog into the backup
        *before* the directory rebinds, so writes the primary already
        acked cannot be missing from the promoted copy.  If the backlog
        cannot drain within ``drain_timeout`` (dead channel, wedged
        backup) the remaining records are explicitly abandoned — loudly —
        rather than left racing the promotion: a record shipped after
        REPL_PROMOTE would be applied by a *serving* origin whose clients
        are already writing to those segments.

        Tells the backup to start serving (REPL_PROMOTE), adds it to the
        ring, rebinds every segment bound to the failed origin — clients
        and relays holding stale bindings re-resolve through the usual
        redirect/re-resolve path — and finally drops the failed origin
        from the ring.  Returns the directory generation after the
        rebinds.  No data moves: the backup already holds it.
        """
        if sender is not None:
            if sender.flush(timeout=drain_timeout):
                _log.info("promotion of %r: replication backlog drained "
                          "into %r", failed, backup)
            else:
                abandoned = sender.abandon()
                _log.warning(
                    "promotion of %r: replication backlog did not drain "
                    "within %.1fs; abandoned %d queued record(s) — the "
                    "promoted backup %r may be missing the newest acked "
                    "writes", failed, drain_timeout, abandoned, backup)
        self._request(backup, ReplicateAppendRequest(
            kind=REPL_PROMOTE, client_id=self.client_id))
        if backup not in self.directory.ring:
            self.directory.add_origin(backup)
        generation = self.directory.generation
        for segment in self.directory.bindings_on(failed):
            generation = self.directory.bind(segment, backup, pinned=True)
        if failed in self.directory.ring:
            self.directory.remove_origin(failed)
        stale = self._channels.pop(failed, None)
        if stale is not None:
            stale.close()
        return generation

    def close(self) -> None:
        channels, self._channels = dict(self._channels), {}
        for channel in channels.values():
            channel.close()

    # -- protocol steps -----------------------------------------------------------

    def _freeze(self, source: str, segment: str) -> MigrateOutReply:
        request = MigrateOutRequest(segment=segment, client_id=self.client_id)
        for _attempt in range(max(1, self.freeze_retry_limit)):
            try:
                reply = self._request(source, request)
            except ServerError as exc:
                if "write-locked" not in str(exc):
                    self._thaw(source, segment)
                    raise
                # the refusal also flagged the segment migration-pending
                # at the source, so the writer cannot re-acquire and the
                # next attempt wins the race
                self._backoff()
                continue
            assert isinstance(reply, MigrateOutReply)
            return reply
        # giving up must unwedge the writers the pending flag is denying
        self._thaw(source, segment)
        raise ServerError(
            f"segment {segment!r} stayed write-locked on {source!r}; "
            f"gave up freezing after {self.freeze_retry_limit} attempts")

    def _thaw(self, source: str, segment: str) -> None:
        try:
            self._request(source, MigrateAbortRequest(
                segment=segment, client_id=self.client_id))
        except (ServerError, TransportError):
            pass  # the lease sentinel has no expiry; surface the original error

    # -- plumbing -----------------------------------------------------------------

    def _backoff(self) -> None:
        if isinstance(self.clock, VirtualClock):
            self.clock.advance(self.freeze_retry_interval)
            # advancing virtual time never blocks, so without a real
            # yield the retry loop can burn every attempt inside one GIL
            # slice while the lease holder sits preempted mid-release
            time.sleep(0.0002)
        else:
            time.sleep(self.freeze_retry_interval)

    def _channel_for(self, origin: str) -> Channel:
        channel = self._channels.get(origin)
        if channel is None:
            channel = self.connector(origin, self.client_id)
            self._channels[origin] = channel
        return channel

    def _request(self, origin: str, request: Message) -> Message:
        raw = self._channel_for(origin).request(encode_message(request))
        reply = decode_message(raw)
        if isinstance(reply, ErrorReply):
            raise ServerError(reply.message)
        if isinstance(reply, MigrateAck) and not reply.ok:
            raise ServerError(
                f"origin {origin!r} rejected {type(request).__name__}")
        if isinstance(reply, ReplicateAck) and not reply.ok:
            raise ServerError(
                f"origin {origin!r} nacked {type(request).__name__}")
        return reply
