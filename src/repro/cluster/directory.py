"""The segment directory: the cluster's authoritative name service.

A :class:`SegmentDirectory` owns the ``segment → origin`` map for a set
of origin servers.  Placement policy is a consistent-hash ring
(:class:`~repro.cluster.ring.HashRing`) with explicit per-segment *pin*
overrides; a binding is **materialized** the first time a segment is
looked up and is stable from then on — membership changes never silently
rebind a segment, because the data is still where it was.  Moving data
is what :class:`~repro.cluster.ClusterCoordinator` does, and it tells
the directory via :meth:`bind` once the bytes have landed.

Every binding carries a *generation* stamp from a directory-global
counter that bumps on every bind and membership change.  Generations
order redirects: a client holding a binding at generation g ignores any
redirect stamped older than g, so a laggard server's stale tombstone
can never send traffic backwards.

The directory is a :class:`~repro.transport.Dispatcher` speaking the
same codec as servers (DirectoryLookup / DirectoryUpdate / GetStats),
so it serves over an in-process hub or a TCP transport unchanged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cluster.ring import HashRing
from repro.errors import InterWeaveError, ServerError
from repro.obs.metrics import DualCounter, MetricsRegistry, get_registry
from repro.transport.base import Dispatcher
from repro.wire.messages import (
    DIR_ADD_ORIGIN,
    DIR_MIGRATE,
    DIR_PIN,
    DIR_REMOVE_ORIGIN,
    DIR_UNPIN,
    DirectoryLookupReply,
    DirectoryLookupRequest,
    DirectoryUpdateReply,
    DirectoryUpdateRequest,
    ErrorReply,
    GetStatsReply,
    GetStatsRequest,
    Message,
    decode_message,
    encode_message,
)


@dataclass
class _Binding:
    origin: str
    generation: int
    pinned: bool = False


class SegmentDirectory(Dispatcher):
    """Consistent-hash segment placement with pins and generations.

    ``migrator(segment, target)`` is an optional hook (installed by a
    :class:`~repro.cluster.ClusterCoordinator`) that performs a live
    migration when a ``DIR_MIGRATE`` update arrives over the wire; with
    no migrator attached such updates are rejected.
    """

    def __init__(self, name: str = "directory",
                 origins: Iterable[str] = (),
                 replicas: int = 64,
                 metrics: Optional[MetricsRegistry] = None):
        self.name = name
        self.metrics = metrics or get_registry()
        self.ring = HashRing(origins, replicas=replicas)
        self.migrator: Optional[Callable[[str, str], int]] = None
        self._bindings: Dict[str, _Binding] = {}
        self._generation = 1
        self._lock = threading.Lock()
        self._lookups = DualCounter(self.metrics.counter(
            "cluster.lookups", "directory lookups answered"))
        self._updates = DualCounter(self.metrics.counter(
            "cluster.directory_updates",
            "membership/pin/migrate updates applied"))
        self._migrations = DualCounter(self.metrics.counter(
            "cluster.migrations_completed",
            "live migrations driven to commit"))

    # -- bindings -----------------------------------------------------------------

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def lookup(self, segment: str) -> Tuple[str, int, bool]:
        """Resolve ``segment`` → (origin, generation, pinned).

        First contact materializes the binding from the ring; it then
        stays put until an explicit :meth:`bind` (migration) changes it.
        """
        with self._lock:
            binding = self._bindings.get(segment)
            if binding is None:
                binding = _Binding(self.ring.lookup(segment),
                                   self._generation)
                self._bindings[segment] = binding
            self._lookups.inc()
            return binding.origin, binding.generation, binding.pinned

    def bind(self, segment: str, origin: str, pinned: bool = True) -> int:
        """Rebind a segment (data has moved); returns the new generation.

        ``pinned`` marks the binding as an explicit override; rebalance
        leaves pinned segments alone even when the ring disagrees.
        """
        with self._lock:
            if origin not in self.ring:
                raise ServerError(f"unknown origin {origin!r}")
            self._generation += 1
            self._bindings[segment] = _Binding(origin, self._generation,
                                               pinned)
            return self._generation

    def pin(self, segment: str, origin: str) -> int:
        """Pin a segment's *future* placement (no data movement here —
        use the coordinator to move an already-materialized segment)."""
        return self.bind(segment, origin, pinned=True)

    def unpin(self, segment: str) -> int:
        """Drop a pin; the binding stays until a rebalance moves it."""
        with self._lock:
            binding = self._bindings.get(segment)
            if binding is None:
                raise ServerError(f"no binding for segment {segment!r}")
            binding.pinned = False
            self._generation += 1
            binding.generation = self._generation
            return self._generation

    # -- membership ---------------------------------------------------------------

    def add_origin(self, origin: str) -> int:
        with self._lock:
            self.ring.add(origin)
            self._generation += 1
            return self._generation

    def remove_origin(self, origin: str) -> int:
        """Remove an origin from the ring.

        Existing bindings to it stay (the data is still there) — run the
        coordinator's ``remove_origin``/``rebalance`` to drain it first.
        """
        with self._lock:
            if not self.ring.remove(origin):
                raise ServerError(f"unknown origin {origin!r}")
            self._generation += 1
            return self._generation

    def bindings_on(self, origin: str) -> List[str]:
        """Segments currently bound to ``origin``."""
        with self._lock:
            return sorted(name for name, binding in self._bindings.items()
                          if binding.origin == origin)

    def plan_rebalance(self) -> List[Tuple[str, str, str]]:
        """(segment, current origin, ring target) for every unpinned
        binding the current ring membership would place elsewhere."""
        with self._lock:
            plan = []
            for name in sorted(self._bindings):
                binding = self._bindings[name]
                if binding.pinned:
                    continue
                target = self.ring.lookup(name)
                if target != binding.origin:
                    plan.append((name, binding.origin, target))
            return plan

    def record_migration(self) -> None:
        """A coordinator drove one migration to commit."""
        self._migrations.inc()

    # -- dispatcher ---------------------------------------------------------------

    def dispatch(self, client_id: str, data: bytes) -> bytes:
        try:
            request = decode_message(data)
            reply = self._handle(client_id, request)
        except InterWeaveError as exc:
            reply = ErrorReply(str(exc))
        except Exception as exc:  # noqa: BLE001 — must answer, not unwind
            reply = ErrorReply(
                f"internal directory error: {type(exc).__name__}: {exc}")
        return encode_message(reply)

    def _handle(self, client_id: str, request) -> Message:
        if isinstance(request, DirectoryLookupRequest):
            origin, generation, pinned = self.lookup(request.segment)
            return DirectoryLookupReply(origin=origin, generation=generation,
                                        pinned=pinned)
        if isinstance(request, DirectoryUpdateRequest):
            return self._update(request)
        if isinstance(request, GetStatsRequest):
            return GetStatsReply(json.dumps(self.stats_snapshot(),
                                            sort_keys=True))
        raise ServerError(
            f"directory cannot handle {type(request).__name__}")

    def _update(self, request: DirectoryUpdateRequest) -> Message:
        if request.op == DIR_ADD_ORIGIN:
            generation = self.add_origin(request.origin)
        elif request.op == DIR_REMOVE_ORIGIN:
            generation = self.remove_origin(request.origin)
        elif request.op == DIR_PIN:
            generation = self.pin(request.segment, request.origin)
        elif request.op == DIR_UNPIN:
            generation = self.unpin(request.segment)
        elif request.op == DIR_MIGRATE:
            if self.migrator is None:
                raise ServerError("directory has no migration coordinator")
            generation = self.migrator(request.segment, request.origin)
        else:
            raise ServerError(f"unknown directory op {request.op}")
        self._updates.inc()
        return DirectoryUpdateReply(ok=True, generation=generation)

    # -- introspection ------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Snapshot shaped like a server's (``server`` + ``metrics``
        sections, so the stats CLI renders it) plus the ``cluster``
        section the GetStats satellite specifies: ring membership, the
        binding generation, and migration/redirect tallies."""
        with self._lock:
            bindings = {name: {"origin": binding.origin,
                               "generation": binding.generation,
                               "pinned": binding.pinned}
                        for name, binding in sorted(self._bindings.items())}
            generation = self._generation
            origins = self.ring.origins
        return {
            "server": {"name": self.name, "segments": {}},
            "cluster": {
                "role": "directory",
                "origins": origins,
                "ring_replicas": self.ring.replicas,
                "generation": generation,
                "bindings": bindings,
                "pinned": sum(1 for b in bindings.values() if b["pinned"]),
                "lookups": self._lookups.local,
                "updates": self._updates.local,
                "migrations_completed": self._migrations.local,
            },
            "metrics": self.metrics.snapshot(),
        }
