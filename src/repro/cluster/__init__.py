"""Multi-origin sharding: directory, consistent hashing, live migration.

The paper's InterWeave servers each own the segments under their own
URL prefix; this package scales that design out to a *cluster* of
origins behind one namespace.  A :class:`SegmentDirectory` places
segments on origins via a consistent-hash :class:`HashRing` (with
explicit pins), clients resolve names through a
:class:`DirectoryResolver` instead of parsing URL prefixes, and a
:class:`ClusterCoordinator` moves live segments between origins —
freezing writes through the lease machinery, shipping versioned state
plus the diff cache, and leaving redirect tombstones that clients chase.
"""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.directory import SegmentDirectory
from repro.cluster.resolver import DirectoryResolver
from repro.cluster.ring import HashRing

__all__ = [
    "ClusterCoordinator",
    "DirectoryResolver",
    "HashRing",
    "SegmentDirectory",
]
