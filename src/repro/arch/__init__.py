"""Machine architecture models (endianness, sizes, alignment)."""

from repro.arch.architecture import (
    ALPHA,
    ARCHITECTURES,
    MIPS32,
    SPARC_32,
    SPARC_V9,
    WIRE_SIZES,
    X86_32,
    X86_64,
    Architecture,
    PrimKind,
    get_architecture,
)

__all__ = [
    "ALPHA",
    "ARCHITECTURES",
    "MIPS32",
    "SPARC_32",
    "SPARC_V9",
    "WIRE_SIZES",
    "X86_32",
    "X86_64",
    "Architecture",
    "PrimKind",
    "get_architecture",
]
