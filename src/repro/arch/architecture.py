"""Machine architecture models.

The paper's whole point is sharing data across *heterogeneous* machines:
x86, Alpha, Sparc, and MIPS boxes differ in byte order, word size, pointer
size, and alignment rules, so the same IDL type has a different local byte
layout on each.  In this reproduction each simulated client declares an
:class:`Architecture`; blocks live in the client's simulated memory in that
architecture's genuine native format (byte order included), and the
translation machinery does real byte-order swaps and alignment-offset
mapping when converting to and from the canonical wire format.

Primitive data units
--------------------
Offsets in MIPs and wire diffs are measured in *primitive data units*
(chars, integers, floats, ...), never bytes — that is what makes them
machine-independent.  :class:`PrimKind` enumerates the units.  A pointer or
a string is a single unit even though its size is machine-dependent
(pointer) or variable (string).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Dict


class PrimKind(Enum):
    """The primitive data units data is addressed in on the wire."""

    CHAR = "char"
    SHORT = "short"
    INT = "int"
    HYPER = "hyper"  # 64-bit integer
    FLOAT = "float"
    DOUBLE = "double"
    POINTER = "pointer"  # local: machine address; wire: MIP string
    STRING = "string"  # local: fixed capacity buffer; wire: length + bytes

    @property
    def is_variable_wire_size(self) -> bool:
        """Pointers and strings have variable wire encodings (MIP / length+data)."""
        return self in (PrimKind.POINTER, PrimKind.STRING)


#: Wire sizes of the fixed-size primitives (canonical big-endian encoding).
WIRE_SIZES: Dict[PrimKind, int] = {
    PrimKind.CHAR: 1,
    PrimKind.SHORT: 2,
    PrimKind.INT: 4,
    PrimKind.HYPER: 8,
    PrimKind.FLOAT: 4,
    PrimKind.DOUBLE: 8,
}

#: numpy dtype codes for the fixed-size primitives.
_NUMPY_CODES: Dict[PrimKind, str] = {
    PrimKind.CHAR: "u1",
    PrimKind.SHORT: "i2",
    PrimKind.INT: "i4",
    PrimKind.HYPER: "i8",
    PrimKind.FLOAT: "f4",
    PrimKind.DOUBLE: "f8",
}

#: struct format characters for the fixed-size primitives.
_STRUCT_CODES: Dict[PrimKind, str] = {
    PrimKind.CHAR: "B",
    PrimKind.SHORT: "h",
    PrimKind.INT: "i",
    PrimKind.HYPER: "q",
    PrimKind.FLOAT: "f",
    PrimKind.DOUBLE: "d",
}


@dataclass(frozen=True)
class Architecture:
    """Byte order, sizes, and alignment rules of one machine type.

    ``max_align`` caps natural alignment (some ABIs align 8-byte doubles to
    4 bytes on 32-bit machines, e.g. the traditional i386 ABI).
    """

    name: str
    endian: str  # "little" or "big"
    word_size: int  # natural word, used for word-by-word page diffing
    pointer_size: int
    max_align: int

    def __post_init__(self):
        if self.endian not in ("little", "big"):
            raise ValueError(f"endian must be 'little' or 'big', not {self.endian!r}")
        if self.word_size not in (4, 8):
            raise ValueError(f"word_size must be 4 or 8, not {self.word_size}")
        if self.pointer_size not in (4, 8):
            raise ValueError(f"pointer_size must be 4 or 8, not {self.pointer_size}")

    # -- sizes and alignment --------------------------------------------------

    def prim_size(self, kind: PrimKind) -> int:
        """Local size in bytes of a fixed-size primitive or pointer."""
        if kind is PrimKind.POINTER:
            return self.pointer_size
        if kind is PrimKind.STRING:
            raise ValueError("string size is per-type (capacity), not per-architecture")
        return WIRE_SIZES[kind]

    def prim_align(self, kind: PrimKind) -> int:
        """Natural alignment of a primitive, capped by the ABI's max_align."""
        if kind is PrimKind.STRING:
            return 1
        return min(self.prim_size(kind), self.max_align)

    @staticmethod
    def align_up(offset: int, alignment: int) -> int:
        return (offset + alignment - 1) // alignment * alignment

    # -- local-format value encoding -------------------------------------------

    def _struct_format(self, kind: PrimKind) -> str:
        prefix = "<" if self.endian == "little" else ">"
        if kind is PrimKind.POINTER:
            return prefix + ("I" if self.pointer_size == 4 else "Q")
        return prefix + _STRUCT_CODES[kind]

    def encode_prim(self, kind: PrimKind, value) -> bytes:
        """Encode one primitive value into this machine's native bytes.

        For CHAR, accepts a one-character string or an int 0..255.  For
        POINTER, the value is a simulated machine address (int); NULL is 0.
        STRING is not handled here (it is a buffer, not a scalar).
        """
        if kind is PrimKind.CHAR and isinstance(value, str):
            value = ord(value)
        return struct.pack(self._struct_format(kind), value)

    def decode_prim(self, kind: PrimKind, data: bytes, offset: int = 0):
        """Decode one primitive value from native bytes at ``offset``."""
        return struct.unpack_from(self._struct_format(kind), data, offset)[0]

    @property
    def numpy_byteorder(self) -> str:
        """The numpy dtype byte-order character for this architecture."""
        return "<" if self.endian == "little" else ">"

    def numpy_dtype(self, kind: PrimKind):
        """The numpy dtype of a fixed-size primitive in local format."""
        import numpy as np

        if kind is PrimKind.POINTER:
            code = "u4" if self.pointer_size == 4 else "u8"
        else:
            code = _NUMPY_CODES[kind]
        return np.dtype(self.numpy_byteorder + code)


# -- the architectures the paper's InterWeave was ported to ---------------------

X86_32 = Architecture(name="x86-32", endian="little", word_size=4, pointer_size=4, max_align=4)
X86_64 = Architecture(name="x86-64", endian="little", word_size=8, pointer_size=8, max_align=8)
ALPHA = Architecture(name="alpha", endian="little", word_size=8, pointer_size=8, max_align=8)
SPARC_V9 = Architecture(name="sparc-v9", endian="big", word_size=8, pointer_size=8, max_align=8)
SPARC_32 = Architecture(name="sparc-32", endian="big", word_size=4, pointer_size=4, max_align=8)
MIPS32 = Architecture(name="mips-32", endian="big", word_size=4, pointer_size=4, max_align=8)

#: Registry of the built-in architectures by name.
ARCHITECTURES: Dict[str, Architecture] = {
    arch.name: arch for arch in (X86_32, X86_64, ALPHA, SPARC_V9, SPARC_32, MIPS32)
}


def get_architecture(name: str) -> Architecture:
    """Look up a built-in architecture by name (raises KeyError if unknown)."""
    try:
        return ARCHITECTURES[name]
    except KeyError:
        raise KeyError(f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}") from None
