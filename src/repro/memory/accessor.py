"""Typed accessors: ordinary reads and writes over simulated memory.

InterWeave's selling point is that once a segment is mapped, shared data is
accessed "using ordinary reads and writes" — in C, through plain pointers
and struct fields.  In this reproduction the equivalent surface is the
accessor layer: an :class:`Accessor` wraps (address, type descriptor) and
turns attribute access (``node.key = 5``), indexing (``vec[3] = 1.5``), and
pointer dereference (``node.next``) into loads and stores through the
simulated MMU — so writes take write faults exactly like compiled stores
would, which is what drives twin creation and diffing.

Scalar fields auto-unwrap: reading ``node.key`` yields an ``int``, reading
``node.next`` yields another accessor (or ``None`` for NULL).  Aggregate
fields yield sub-accessors.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.arch import Architecture, PrimKind
from repro.errors import BlockError
from repro.memory.mmu import AddressSpace
from repro.types import (
    ArrayDescriptor,
    PointerDescriptor,
    PrimitiveDescriptor,
    RecordDescriptor,
    StringDescriptor,
    TypeDescriptor,
)


class AccessorContext:
    """Everything an accessor needs to touch memory: the address space and
    the architecture whose local format the bytes are in."""

    __slots__ = ("memory", "arch")

    def __init__(self, memory: AddressSpace, arch: Architecture):
        self.memory = memory
        self.arch = arch


def make_accessor(context: AccessorContext, descriptor: TypeDescriptor,
                  address: int) -> "Accessor":
    """Build the accessor class matching ``descriptor``."""
    if isinstance(descriptor, RecordDescriptor):
        return RecordAccessor(context, descriptor, address)
    if isinstance(descriptor, ArrayDescriptor):
        return ArrayAccessor(context, descriptor, address)
    if isinstance(descriptor, PrimitiveDescriptor):
        return PrimitiveAccessor(context, descriptor, address)
    if isinstance(descriptor, StringDescriptor):
        return StringAccessor(context, descriptor, address)
    if isinstance(descriptor, PointerDescriptor):
        return PointerAccessor(context, descriptor, address)
    raise BlockError(f"no accessor for descriptor {descriptor!r}")


class Accessor:
    """Base: a typed window at an address in simulated memory."""

    __slots__ = ("_context", "_descriptor", "_address")

    def __init__(self, context: AccessorContext, descriptor: TypeDescriptor, address: int):
        object.__setattr__(self, "_context", context)
        object.__setattr__(self, "_descriptor", descriptor)
        object.__setattr__(self, "_address", address)

    @property
    def address(self) -> int:
        return self._address

    @property
    def descriptor(self) -> TypeDescriptor:
        return self._descriptor

    @property
    def context(self) -> AccessorContext:
        return self._context

    def raw_bytes(self) -> bytes:
        """The local-format bytes of this value (mainly for tests)."""
        return self._context.memory.load(
            self._address, self._descriptor.local_size(self._context.arch))

    def __eq__(self, other):
        return (isinstance(other, Accessor)
                and other._address == self._address
                and other._context is self._context
                and other._descriptor == self._descriptor)

    def __hash__(self):
        return hash((id(self._context), self._address))

    def __repr__(self):
        return f"{type(self).__name__}({self._descriptor!r} @ {self._address:#x})"


def _unwrap_get(context, descriptor, address):
    """Read a field: scalars return values, aggregates return accessors."""
    if isinstance(descriptor, PrimitiveDescriptor):
        return PrimitiveAccessor(context, descriptor, address).get()
    if isinstance(descriptor, StringDescriptor):
        return StringAccessor(context, descriptor, address).get()
    if isinstance(descriptor, PointerDescriptor):
        return PointerAccessor(context, descriptor, address).get()
    return make_accessor(context, descriptor, address)


def _unwrap_set(context, descriptor, address, value) -> None:
    """Write a field from a Python value (or copy from an accessor)."""
    if isinstance(descriptor, PrimitiveDescriptor):
        PrimitiveAccessor(context, descriptor, address).set(value)
    elif isinstance(descriptor, StringDescriptor):
        StringAccessor(context, descriptor, address).set(value)
    elif isinstance(descriptor, PointerDescriptor):
        PointerAccessor(context, descriptor, address).set(value)
    elif isinstance(value, Accessor) and value.descriptor == descriptor:
        # struct assignment: byte copy in matching local formats
        if value.context.arch.name != context.arch.name:
            raise BlockError("cannot byte-copy between different architectures")
        context.memory.store(address, value.raw_bytes())
    else:
        raise BlockError(f"cannot assign {value!r} to aggregate {descriptor!r}")


class PrimitiveAccessor(Accessor):
    """A scalar char/short/int/hyper/float/double."""

    __slots__ = ()

    def get(self):
        arch = self._context.arch
        kind = self._descriptor.kind
        data = self._context.memory.load(self._address, arch.prim_size(kind))
        value = arch.decode_prim(kind, data)
        return chr(value) if kind is PrimKind.CHAR else value

    def set(self, value) -> None:
        arch = self._context.arch
        self._context.memory.store(
            self._address, arch.encode_prim(self._descriptor.kind, value))


class StringAccessor(Accessor):
    """A bounded, NUL-terminated string buffer."""

    __slots__ = ()

    def get(self) -> str:
        data = self._context.memory.load(self._address, self._descriptor.capacity)
        nul = data.find(b"\x00")
        return (data if nul < 0 else data[:nul]).decode("utf-8", errors="replace")

    def set(self, value: str) -> None:
        capacity = self._descriptor.capacity
        encoded = value.encode("utf-8")
        if len(encoded) > capacity - 1:
            raise BlockError(
                f"string of {len(encoded)} bytes exceeds capacity {capacity} "
                "(one byte is reserved for the terminator)")
        self._context.memory.store(
            self._address, encoded + b"\x00" * (capacity - len(encoded)))


class PointerAccessor(Accessor):
    """A typed pointer holding a simulated machine address (NULL = 0)."""

    __slots__ = ()

    def get(self) -> Optional[Accessor]:
        address = self.address_value()
        if address == 0:
            return None
        return make_accessor(self._context, self._descriptor.target, address)

    def address_value(self) -> int:
        arch = self._context.arch
        data = self._context.memory.load(self._address, arch.pointer_size)
        return arch.decode_prim(PrimKind.POINTER, data)

    def set(self, target: Union[None, int, Accessor]) -> None:
        if target is None:
            address = 0
        elif isinstance(target, Accessor):
            address = target.address
        elif isinstance(target, int):
            address = target
        else:
            raise BlockError(f"cannot store {target!r} into a pointer")
        arch = self._context.arch
        self._context.memory.store(
            self._address, arch.encode_prim(PrimKind.POINTER, address))


class RecordAccessor(Accessor):
    """A struct: fields are attributes (``rec.field``)."""

    __slots__ = ()

    def _field_address(self, name: str) -> int:
        descriptor: RecordDescriptor = self._descriptor
        return self._address + descriptor.field_local_offset(self._context.arch, name)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        descriptor: RecordDescriptor = self._descriptor
        field = descriptor.field(name)
        return _unwrap_get(self._context, field.descriptor, self._field_address(name))

    def __setattr__(self, name: str, value) -> None:
        descriptor: RecordDescriptor = self._descriptor
        field = descriptor.field(name)
        _unwrap_set(self._context, field.descriptor, self._field_address(name), value)

    def field_accessor(self, name: str) -> Accessor:
        """An accessor for a field even when it is a scalar (no unwrap)."""
        descriptor: RecordDescriptor = self._descriptor
        field = descriptor.field(name)
        return make_accessor(self._context, field.descriptor, self._field_address(name))

    def field_names(self):
        return [field.name for field in self._descriptor.fields]


class ArrayAccessor(Accessor):
    """An array: elements are items (``arr[i]``), with bulk helpers."""

    __slots__ = ()

    def __len__(self) -> int:
        return self._descriptor.count

    def _element_address(self, index: int) -> int:
        descriptor: ArrayDescriptor = self._descriptor
        count = descriptor.count
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(f"array index {index} out of range [0, {count})")
        return self._address + index * descriptor.element_stride(self._context.arch)

    def __getitem__(self, index: int):
        descriptor: ArrayDescriptor = self._descriptor
        return _unwrap_get(self._context, descriptor.element, self._element_address(index))

    def __setitem__(self, index: int, value) -> None:
        descriptor: ArrayDescriptor = self._descriptor
        _unwrap_set(self._context, descriptor.element, self._element_address(index), value)

    def element_accessor(self, index: int) -> Accessor:
        return make_accessor(
            self._context, self._descriptor.element, self._element_address(index))

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    # -- bulk operations (the fast path the benchmarks use) -----------------------

    def write_values(self, values: Sequence, start: int = 0) -> None:
        """Bulk-store primitive values, one MMU store per call.

        Only valid for arrays of fixed-size primitives; values are encoded
        in the architecture's local format with numpy.
        """
        descriptor: ArrayDescriptor = self._descriptor
        element = descriptor.element
        if not isinstance(element, PrimitiveDescriptor):
            raise BlockError("write_values requires an array of primitives")
        if start < 0 or start + len(values) > descriptor.count:
            raise IndexError("write_values range out of bounds")
        dtype = self._context.arch.numpy_dtype(element.kind)
        data = np.asarray(values, dtype=dtype).tobytes()
        self._context.memory.store(self._address + start * dtype.itemsize, data)

    def read_values(self, start: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Bulk-load primitive values as a numpy array."""
        descriptor: ArrayDescriptor = self._descriptor
        element = descriptor.element
        if not isinstance(element, PrimitiveDescriptor):
            raise BlockError("read_values requires an array of primitives")
        if count is None:
            count = descriptor.count - start
        if start < 0 or start + count > descriptor.count:
            raise IndexError("read_values range out of bounds")
        dtype = self._context.arch.numpy_dtype(element.kind)
        data = self._context.memory.load(self._address + start * dtype.itemsize,
                                         count * dtype.itemsize)
        return np.frombuffer(data, dtype=dtype)
