"""The InterWeave client heap: subsegments, blocks, and free space.

An InterWeave client manages its own heap rather than using ``malloc``.
The cached copy of a segment need not be contiguous: it is a collection of
*subsegments*, each a contiguous, page-aligned mapping, so any given page
holds data from exactly one segment.  Blocks are carved out of subsegments
and are individually contiguous; segments grow by mapping new subsegments.

Bookkeeping matches Figure 2 of the paper:

- per segment: the first-subsegment list, a free list, and two balanced
  trees of blocks — by serial number (``blk_number_tree``) and by symbolic
  name (``blk_name_tree``) — which together support MIP -> pointer
  translation;
- per subsegment: a *pagemap* (pointers to twins) and a balanced tree of
  blocks by address (``blk_addr_tree``);
- per client: a global tree of all subsegments by address
  (``subseg_addr_tree``); together with the per-subsegment trees it
  supports modification detection and pointer -> MIP translation.

Every block is preceded in memory by a small header region (its size is
:data:`BLOCK_HEADER_SIZE`); the header keeps blocks from abutting so a
changed-word run ending at a block boundary cannot silently bleed into the
next block's data, and mimics the in-memory block headers of the C++
implementation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.arch import Architecture
from repro.errors import BlockError, SegmentError
from repro.memory.mmu import AddressSpace
from repro.types import TypeDescriptor
from repro.util import AVLTree

#: Bytes reserved in front of every block's data.
BLOCK_HEADER_SIZE = 16

#: Allocation granule; every chunk offset and size is a multiple of this,
#: which also satisfies the strictest primitive alignment (8).
_GRANULE = 16

#: Minimum size of a newly mapped subsegment, in pages.
MIN_SUBSEGMENT_PAGES = 16


class BlockInfo:
    """Metadata for one block (the contents of its header).

    ``version`` is the segment version in which the block was last
    modified, as reported by the server; it drives the locality layout
    optimization and last-block prediction.
    """

    __slots__ = ("serial", "name", "address", "size", "descriptor", "type_serial",
                 "version", "subsegment", "chunk_size")

    def __init__(self, serial: int, name: Optional[str], address: int, size: int,
                 descriptor: TypeDescriptor, type_serial: int, subsegment: "SubSegment",
                 chunk_size: int, version: int = 0):
        self.serial = serial
        self.name = name
        self.address = address
        self.size = size
        self.descriptor = descriptor
        self.type_serial = type_serial
        self.version = version
        self.subsegment = subsegment
        self.chunk_size = chunk_size

    @property
    def end(self) -> int:
        return self.address + self.size

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"Block(#{self.serial}{label} @{self.address:#x} size={self.size})"


class SubSegment:
    """A contiguous page-aligned slice of one segment's cached copy."""

    __slots__ = ("base", "num_pages", "page_size", "segment_heap", "pagemap", "blk_addr_tree")

    def __init__(self, base: int, num_pages: int, page_size: int, segment_heap: "SegmentHeap"):
        self.base = base
        self.num_pages = num_pages
        self.page_size = page_size
        self.segment_heap = segment_heap
        #: page index within the subsegment -> twin bytes (pristine copy)
        self.pagemap: Dict[int, bytes] = {}
        self.blk_addr_tree = AVLTree()

    @property
    def size(self) -> int:
        return self.num_pages * self.page_size

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def page_index(self, address: int) -> int:
        return (address - self.base) // self.page_size

    def first_page_number(self) -> int:
        return self.base // self.page_size

    def __repr__(self):
        return f"SubSegment(@{self.base:#x}, {self.num_pages} pages)"


class Heap:
    """Client-wide heap state shared by all cached segments."""

    def __init__(self, address_space: AddressSpace):
        self.address_space = address_space
        self.subseg_addr_tree = AVLTree()

    def find_subsegment(self, address: int) -> Optional[SubSegment]:
        """The subsegment spanning ``address``, or None."""
        hit = self.subseg_addr_tree.floor(address)
        if hit is None:
            return None
        subsegment = hit[1]
        return subsegment if subsegment.contains(address) else None

    def _register(self, subsegment: SubSegment) -> None:
        self.subseg_addr_tree[subsegment.base] = subsegment

    def _unregister(self, subsegment: SubSegment) -> None:
        del self.subseg_addr_tree[subsegment.base]


class SegmentHeap:
    """Per-segment allocation state: subsegments, free list, block trees."""

    def __init__(self, name: str, heap: Heap, arch: Architecture):
        self.name = name
        self.heap = heap
        self.arch = arch
        self.subsegments: List[SubSegment] = []
        #: free chunks keyed by start address (values are chunk sizes)
        self.free_tree = AVLTree()
        self.blk_number_tree = AVLTree()
        self.blk_name_tree = AVLTree()
        self.next_serial = 1

    # -- growth ----------------------------------------------------------------

    def expand(self, min_bytes: int) -> SubSegment:
        """Map a new subsegment with at least ``min_bytes`` of space."""
        page_size = self.heap.address_space.page_size
        pages = max(MIN_SUBSEGMENT_PAGES, -(-min_bytes // page_size))
        base = self.heap.address_space.map_region(pages)
        subsegment = SubSegment(base, pages, page_size, self)
        self.subsegments.append(subsegment)
        self.heap._register(subsegment)
        self._free_chunk(base, subsegment.size)
        return subsegment

    # -- allocation ---------------------------------------------------------------

    def allocate(self, descriptor: TypeDescriptor, type_serial: int,
                 name: Optional[str] = None, serial: Optional[int] = None,
                 version: int = 0) -> BlockInfo:
        """Allocate a block; assigns the next serial unless one is given.

        A caller-provided serial is used when materializing blocks received
        from the server, whose serials were assigned by their creator.
        """
        if name is not None and name in self.blk_name_tree:
            raise BlockError(f"segment {self.name!r}: block name {name!r} already in use")
        if serial is None:
            serial = self.next_serial
        elif serial in self.blk_number_tree:
            raise BlockError(f"segment {self.name!r}: block serial {serial} already in use")
        self.next_serial = max(self.next_serial, serial + 1)

        data_size = descriptor.local_size(self.arch)
        chunk_size = BLOCK_HEADER_SIZE + Architecture.align_up(max(data_size, 1), _GRANULE)
        chunk_start = self._take_chunk(chunk_size)
        if chunk_start is None:
            self.expand(chunk_size)
            chunk_start = self._take_chunk(chunk_size)
            if chunk_start is None:
                raise SegmentError(f"segment {self.name!r}: allocation of {chunk_size} failed")

        address = chunk_start + BLOCK_HEADER_SIZE
        subsegment = self.heap.find_subsegment(address)
        if subsegment is None or subsegment.segment_heap is not self:
            raise SegmentError(f"segment {self.name!r}: chunk outside own subsegments")
        block = BlockInfo(serial, name, address, data_size, descriptor, type_serial,
                          subsegment, chunk_size, version)
        self.blk_number_tree[serial] = block
        if name is not None:
            self.blk_name_tree[name] = block
        subsegment.blk_addr_tree[address] = block
        return block

    def free(self, block: BlockInfo) -> None:
        """Return a block's chunk to the free list (coalescing neighbours)."""
        existing = self.blk_number_tree.get(block.serial)
        if existing is not block:
            raise BlockError(f"segment {self.name!r}: block #{block.serial} not live")
        del self.blk_number_tree[block.serial]
        if block.name is not None:
            del self.blk_name_tree[block.name]
        del block.subsegment.blk_addr_tree[block.address]
        self._free_chunk(block.address - BLOCK_HEADER_SIZE, block.chunk_size)

    # -- lookups --------------------------------------------------------------------

    def block_by_serial(self, serial: int) -> BlockInfo:
        block = self.blk_number_tree.get(serial)
        if block is None:
            raise BlockError(f"segment {self.name!r}: no block with serial {serial}")
        return block

    def block_by_name(self, name: str) -> BlockInfo:
        block = self.blk_name_tree.get(name)
        if block is None:
            raise BlockError(f"segment {self.name!r}: no block named {name!r}")
        return block

    def block_spanning(self, address: int) -> Optional[BlockInfo]:
        """The block whose data contains ``address`` (pointer -> MIP path)."""
        subsegment = self.heap.find_subsegment(address)
        if subsegment is None or subsegment.segment_heap is not self:
            return None
        hit = subsegment.blk_addr_tree.floor(address)
        if hit is None:
            return None
        block = hit[1]
        return block if address < block.end else None

    def blocks(self) -> Iterator[BlockInfo]:
        """All live blocks in serial order."""
        return self.blk_number_tree.values()

    @property
    def total_data_bytes(self) -> int:
        return sum(block.size for block in self.blocks())

    # -- free-list internals -----------------------------------------------------------

    def _take_chunk(self, size: int) -> Optional[int]:
        """First-fit scan of the free list in address order."""
        candidate = None
        for start, chunk_size in self.free_tree.items():
            if chunk_size >= size:
                candidate = (start, chunk_size)
                break
        if candidate is None:
            return None
        start, chunk_size = candidate
        del self.free_tree[start]
        if chunk_size > size:
            self.free_tree[start + size] = chunk_size - size
        return start

    def _free_chunk(self, start: int, size: int) -> None:
        subsegment = self.heap.find_subsegment(start)
        # Coalesce with the preceding chunk if contiguous within the same
        # subsegment (subsegments may be non-adjacent in address space).
        prev = self.free_tree.floor(start)
        if prev is not None:
            prev_start, prev_size = prev
            if prev_start + prev_size == start and subsegment is not None \
                    and subsegment.contains(prev_start):
                del self.free_tree[prev_start]
                start, size = prev_start, prev_size + size
        nxt = self.free_tree.ceiling(start + size)
        if nxt is not None:
            next_start, next_size = nxt
            if start + size == next_start and subsegment is not None \
                    and subsegment.contains(next_start):
                del self.free_tree[next_start]
                size += next_size
        self.free_tree[start] = size

    def free_bytes(self) -> int:
        return sum(size for _, size in self.free_tree.items())

    def check_invariants(self) -> None:
        """Validate heap consistency (used by tests and property checks)."""
        self.free_tree.check_invariants()
        self.blk_number_tree.check_invariants()
        spans = []
        for block in self.blocks():
            spans.append((block.address - BLOCK_HEADER_SIZE, block.chunk_size, "block"))
            assert block.subsegment.contains(block.address)
            assert block.end <= block.subsegment.end
        for start, size in self.free_tree.items():
            spans.append((start, size, "free"))
        spans.sort()
        for (s1, l1, _), (s2, _, _) in zip(spans, spans[1:]):
            assert s1 + l1 <= s2, "heap chunks overlap"
        covered = sum(l for _, l, _ in spans)
        total = sum(sub.size for sub in self.subsegments)
        assert covered == total, f"heap accounting mismatch: {covered} != {total}"
