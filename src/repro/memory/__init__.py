"""Simulated memory: pages + MMU, the subsegment heap, typed accessors."""

from repro.memory.accessor import (
    Accessor,
    AccessorContext,
    ArrayAccessor,
    PointerAccessor,
    PrimitiveAccessor,
    RecordAccessor,
    StringAccessor,
    make_accessor,
)
from repro.memory.heap import (
    BLOCK_HEADER_SIZE,
    MIN_SUBSEGMENT_PAGES,
    BlockInfo,
    Heap,
    SegmentHeap,
    SubSegment,
)
from repro.memory.mmu import PAGE_SIZE, AddressSpace, Page

__all__ = [
    "Accessor",
    "AccessorContext",
    "AddressSpace",
    "ArrayAccessor",
    "BLOCK_HEADER_SIZE",
    "BlockInfo",
    "Heap",
    "MIN_SUBSEGMENT_PAGES",
    "PAGE_SIZE",
    "Page",
    "PointerAccessor",
    "PrimitiveAccessor",
    "RecordAccessor",
    "SegmentHeap",
    "StringAccessor",
    "SubSegment",
    "make_accessor",
]
