"""Simulated virtual memory with page protection and write faults.

InterWeave's client-side modification tracking rests on virtual memory
hardware: on a write-lock acquire the library write-protects the pages of
the segment; the first store to each page raises SIGSEGV, and the signal
handler makes a pristine copy (*twin*) of the page, records it in the
subsegment's pagemap, and re-enables write access.

Python cannot take real page faults, so this module is the stand-in: an
:class:`AddressSpace` of fixed-size pages with per-page protection bits.
Every store issued by the typed accessor layer goes through
:meth:`AddressSpace.store`; a store that touches a write-protected page
invokes the registered fault handler — the same contract as the paper's
SIGSEGV handler (create twin, unprotect, retry) — before the bytes land.

Addresses are plain integers.  Regions are mapped at page granularity by a
bump allocator, so every page belongs to at most one mapping (the paper's
invariant that "any given page contains data from only one segment" is
enforced one level up, by the heap, which maps a fresh region per
subsegment).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ProtectionError
from repro.obs.metrics import MetricsRegistry, get_registry

#: Default page size (bytes).  4 KiB, as on the paper's platforms.
PAGE_SIZE = 4096

#: Base address of the first mapping; nonzero so address 0 stays NULL.
_BASE_ADDRESS = 0x1000_0000


class Page:
    """One page of simulated memory."""

    __slots__ = ("data", "writable")

    def __init__(self, size: int):
        self.data = bytearray(size)
        self.writable = True

    def as_words(self, word_size: int) -> np.ndarray:
        """View the page as an array of unsigned words (for word diffing)."""
        dtype = np.uint32 if word_size == 4 else np.uint64
        return np.frombuffer(self.data, dtype=dtype)


class FaultStats:
    """Counters exposed for experiments: faults taken, pages protected."""

    __slots__ = ("write_faults", "protect_calls", "unprotect_calls")

    def __init__(self):
        self.write_faults = 0
        self.protect_calls = 0
        self.unprotect_calls = 0

    def reset(self):
        self.write_faults = 0
        self.protect_calls = 0
        self.unprotect_calls = 0


class AddressSpace:
    """A client process's simulated address space.

    ``fault_handler(address_space, page_number)`` is installed by the
    InterWeave client library at startup (mirroring its SIGSEGV handler).
    It must either make the page writable (returning True) or return False,
    in which case the store raises :class:`ProtectionError`.
    """

    def __init__(self, page_size: int = PAGE_SIZE,
                 metrics: Optional[MetricsRegistry] = None):
        if page_size < 32 or page_size & (page_size - 1):
            raise ValueError(f"page size must be a power of two >= 32, got {page_size}")
        self.page_size = page_size
        self._pages: Dict[int, Page] = {}
        self._next_page = _BASE_ADDRESS // page_size
        self.fault_handler: Optional[Callable[["AddressSpace", int], bool]] = None
        self.stats = FaultStats()
        metrics = metrics or get_registry()
        self._m_write_faults = metrics.counter(
            "mmu.write_faults", "stores that hit a write-protected page")
        self._m_protects = metrics.counter(
            "mmu.protect_calls", "protect_range invocations")
        self._m_unprotects = metrics.counter(
            "mmu.unprotect_calls", "unprotect invocations")

    # -- mapping ---------------------------------------------------------------

    def map_region(self, num_pages: int) -> int:
        """Map ``num_pages`` fresh zeroed pages; returns the base address."""
        if num_pages < 1:
            raise ValueError("must map at least one page")
        first = self._next_page
        self._next_page += num_pages
        for page_number in range(first, first + num_pages):
            self._pages[page_number] = Page(self.page_size)
        return first * self.page_size

    def unmap_region(self, base: int, num_pages: int) -> None:
        """Remove a mapping (used when a cached segment is discarded)."""
        first = base // self.page_size
        for page_number in range(first, first + num_pages):
            self._pages.pop(page_number, None)

    def is_mapped(self, address: int) -> bool:
        return address // self.page_size in self._pages

    def page(self, page_number: int) -> Page:
        try:
            return self._pages[page_number]
        except KeyError:
            raise ProtectionError(f"page {page_number:#x} is not mapped") from None

    def page_number(self, address: int) -> int:
        return address // self.page_size

    # -- protection --------------------------------------------------------------

    def protect_range(self, base: int, length: int) -> None:
        """Write-protect all pages overlapping [base, base+length)."""
        for page_number in self._page_span(base, length):
            self.page(page_number).writable = False
        self.stats.protect_calls += 1
        self._m_protects.inc()

    def unprotect_range(self, base: int, length: int) -> None:
        for page_number in self._page_span(base, length):
            self.page(page_number).writable = True
        self.stats.unprotect_calls += 1
        self._m_unprotects.inc()

    def unprotect_page(self, page_number: int) -> None:
        self.page(page_number).writable = True
        self.stats.unprotect_calls += 1
        self._m_unprotects.inc()

    def _page_span(self, base: int, length: int):
        if length <= 0:
            return range(0)
        return range(base // self.page_size, (base + length - 1) // self.page_size + 1)

    # -- loads and stores ----------------------------------------------------------

    def load(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes (may span pages)."""
        out = bytearray(size)
        cursor = 0
        while cursor < size:
            page_number, offset = divmod(address + cursor, self.page_size)
            page = self.page(page_number)
            chunk = min(size - cursor, self.page_size - offset)
            out[cursor:cursor + chunk] = page.data[offset:offset + chunk]
            cursor += chunk
        return bytes(out)

    def store(self, address: int, data) -> None:
        """Write bytes (may span pages), taking write faults as needed.

        This is the single choke point all application stores go through —
        the simulated equivalent of the CPU's store path.
        """
        size = len(data)
        view = memoryview(data)
        cursor = 0
        while cursor < size:
            page_number, offset = divmod(address + cursor, self.page_size)
            page = self.page(page_number)
            if not page.writable:
                self._fault(page_number)
                page = self.page(page_number)  # handler may have replaced it
                if not page.writable:
                    raise ProtectionError(
                        f"store to write-protected page {page_number:#x} "
                        f"(address {address + cursor:#x}) not resolved by fault handler")
            chunk = min(size - cursor, self.page_size - offset)
            page.data[offset:offset + chunk] = view[cursor:cursor + chunk]
            cursor += chunk

    def _fault(self, page_number: int) -> None:
        self.stats.write_faults += 1
        self._m_write_faults.inc()
        if self.fault_handler is None:
            raise ProtectionError(
                f"write fault on page {page_number:#x} with no fault handler installed")
        if not self.fault_handler(self, page_number):
            raise ProtectionError(f"fault handler refused write to page {page_number:#x}")

    # -- page-level helpers for the diffing machinery -------------------------------

    def page_bytes(self, page_number: int) -> bytearray:
        """Direct (mutable) access to a page's backing bytes."""
        return self.page(page_number).data

    def snapshot_page(self, page_number: int) -> bytes:
        """A pristine copy of a page — twin creation."""
        return bytes(self.page(page_number).data)
