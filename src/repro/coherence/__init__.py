"""Relaxed coherence models and the adaptive polling/notification protocol."""

from repro.coherence.models import (
    CoherencePolicy,
    delta,
    diff,
    full,
    temporal,
    version_stale,
)
from repro.coherence.polling import SUBSCRIBE_AFTER, UNSUBSCRIBE_AFTER, AdaptivePoller

__all__ = [
    "AdaptivePoller",
    "CoherencePolicy",
    "SUBSCRIBE_AFTER",
    "UNSUBSCRIBE_AFTER",
    "delta",
    "diff",
    "full",
    "temporal",
    "version_stale",
]
