"""The client half of the adaptive polling/notification protocol.

A client that re-validates its cached segment on every read-lock acquire
pays a round trip even when nothing changed.  InterWeave's adaptive
protocol lets the client stop polling once the server agrees to *notify*
it when its coherence bound is violated: between notifications, read locks
are purely local.

This module holds the per-segment adaptation state machine:

- start in POLLING mode;
- after :data:`SUBSCRIBE_AFTER` consecutive polls that found the cache
  still valid (wasted round trips), request a subscription — reads are
  clearly outpacing writes;
- in NOTIFYING mode, a read acquire touches the network only after an
  invalidation arrived;
- if the transport cannot push (``can_push`` false), stay in POLLING mode
  forever.

Temporal coherence additionally short-circuits *before* any of this: if
the copy was validated within the last ``x`` time units it is recent
enough by definition, no protocol needed.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry

#: consecutive redundant polls before switching to notification mode
SUBSCRIBE_AFTER = 3

#: consecutive notified invalidations before dropping the subscription:
#: when writes outpace reads, every read pays a validation *and* the
#: server pays a push, so polling alone is cheaper
UNSUBSCRIBE_AFTER = 4


class AdaptivePoller:
    """Per-(client, segment) polling/notification state."""

    __slots__ = ("can_push", "subscribed", "invalidated", "_redundant_polls",
                 "_notified_streak", "last_validate_time",
                 "last_known_server_version", "_m_subscribes",
                 "_m_unsubscribes", "_m_notifies", "_m_redundant",
                 "_m_disconnects")

    def __init__(self, can_push: bool,
                 metrics: Optional[MetricsRegistry] = None):
        self.can_push = can_push
        self.subscribed = False
        self.invalidated = True  # nothing cached yet: must talk to the server
        self._redundant_polls = 0
        self._notified_streak = 0
        self.last_validate_time = float("-inf")
        self.last_known_server_version = 0
        metrics = metrics or get_registry()
        self._m_subscribes = metrics.counter(
            "poller.subscribes", "POLLING -> NOTIFYING transitions")
        self._m_unsubscribes = metrics.counter(
            "poller.unsubscribes", "NOTIFYING -> POLLING transitions")
        self._m_notifies = metrics.counter(
            "poller.invalidations", "invalidation pushes received")
        self._m_redundant = metrics.counter(
            "poller.redundant_polls", "validations that found nothing new")
        self._m_disconnects = metrics.counter(
            "poller.disconnect_resets",
            "pollers reset to POLLING after a transport reconnect")

    # -- decisions --------------------------------------------------------------

    def must_contact_server(self, *, temporal_bound: float = None,
                            now: float = None) -> bool:
        """Does this read acquire need a server round trip?"""
        if temporal_bound is not None and now is not None:
            if now - self.last_validate_time <= temporal_bound:
                return False  # recent enough by the temporal bound alone
        if self.subscribed:
            return self.invalidated
        return True  # polling mode always asks

    def wants_subscription(self) -> bool:
        """Should the next request piggyback a subscribe?"""
        return (self.can_push and not self.subscribed
                and self._redundant_polls >= SUBSCRIBE_AFTER)

    def wants_unsubscription(self) -> bool:
        """Has the write rate made the subscription a net loss?"""
        return (self.subscribed
                and self._notified_streak >= UNSUBSCRIBE_AFTER)

    # -- events -------------------------------------------------------------------

    def on_validated(self, server_version: int, had_update: bool, now: float) -> None:
        """A server round trip completed; the cache is now valid."""
        self.last_validate_time = now
        self.last_known_server_version = max(self.last_known_server_version, server_version)
        self.invalidated = False
        if had_update:
            self._redundant_polls = 0
        else:
            self._redundant_polls += 1
            self._notified_streak = 0  # a quiet interval: pushes pay off again
            self._m_redundant.inc()

    def on_subscribed(self) -> None:
        self.subscribed = True
        self._redundant_polls = 0
        self._notified_streak = 0
        self._m_subscribes.inc()

    def on_unsubscribed(self) -> None:
        self.subscribed = False
        self._redundant_polls = 0
        self._notified_streak = 0
        self._m_unsubscribes.inc()

    def on_notify(self, server_version: int) -> None:
        """The server pushed an invalidation: the coherence bound is broken."""
        self.invalidated = True
        self._notified_streak += 1
        self._m_notifies.inc()
        self.last_known_server_version = max(self.last_known_server_version, server_version)

    def on_disconnect(self) -> None:
        """The channel lost (and re-established) its connection.

        Invalidations pushed while the link was down are gone, and the
        server may have forgotten the subscription, so the safe state is
        the initial one: unsubscribed, invalidated, counters cleared —
        the next read acquire revalidates against the server.
        """
        self.invalidated = True
        self.subscribed = False
        self._redundant_polls = 0
        self._notified_streak = 0
        self._m_disconnects.inc()

    def on_local_write(self, new_version: int, now: float) -> None:
        """Our own write release: we hold the newest version by construction."""
        self.last_validate_time = now
        self.last_known_server_version = max(self.last_known_server_version, new_version)
        self.invalidated = False
