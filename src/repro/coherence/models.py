"""Relaxed coherence models.

InterWeave segments move through internally consistent versions; a client's
cached copy need only be "recent enough" for the coherence model the
process selected, which is what lets the middleware skip updates (and often
skip server communication altogether).  The models from Section 3.2:

- **Full** coherence: the cached copy must be the current version.
- **Delta(x)** coherence: no more than ``x`` versions out of date — with
  ``x = 2`` the client takes every second version, etc.
- **Temporal(x)** coherence: no more than ``x`` time units out of date.
- **Diff(x)** coherence: no more than ``x`` percent of the segment's
  primitive data elements out of date; the server tracks a conservative
  per-client counter of bytes modified since the client's last update (it
  assumes all updates touch independent data).

``x`` can be changed dynamically by the process at any time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CoherenceError
from repro.wire.messages import (
    COHERENCE_DELTA,
    COHERENCE_DIFF,
    COHERENCE_FULL,
    COHERENCE_TEMPORAL,
)


@dataclass(frozen=True)
class CoherencePolicy:
    """A coherence model plus its parameter, as carried in lock requests."""

    kind: int
    param: float = 0.0

    def __post_init__(self):
        if self.kind not in (COHERENCE_FULL, COHERENCE_DELTA,
                             COHERENCE_TEMPORAL, COHERENCE_DIFF):
            raise CoherenceError(f"unknown coherence kind {self.kind}")
        if self.kind == COHERENCE_DELTA and self.param < 1:
            raise CoherenceError("Delta coherence needs x >= 1 versions")
        if self.kind == COHERENCE_TEMPORAL and self.param < 0:
            raise CoherenceError("Temporal coherence needs x >= 0 time units")
        if self.kind == COHERENCE_DIFF and not 0 <= self.param <= 100:
            raise CoherenceError("Diff coherence needs 0 <= x <= 100 percent")

    @property
    def name(self) -> str:
        return {COHERENCE_FULL: "full", COHERENCE_DELTA: "delta",
                COHERENCE_TEMPORAL: "temporal", COHERENCE_DIFF: "diff"}[self.kind]

    def __str__(self):
        return self.name if self.kind == COHERENCE_FULL else f"{self.name}({self.param:g})"


def full() -> CoherencePolicy:
    """Always use the current version."""
    return CoherencePolicy(COHERENCE_FULL)


def delta(versions: int) -> CoherencePolicy:
    """At most ``versions`` versions out of date."""
    return CoherencePolicy(COHERENCE_DELTA, float(versions))


def temporal(seconds: float) -> CoherencePolicy:
    """At most ``seconds`` time units out of date."""
    return CoherencePolicy(COHERENCE_TEMPORAL, float(seconds))


def diff(percent: float) -> CoherencePolicy:
    """At most ``percent`` % of primitive data elements out of date."""
    return CoherencePolicy(COHERENCE_DIFF, float(percent))


def version_stale(policy: CoherencePolicy, client_version: int,
                  current_version: int) -> bool:
    """The version-arithmetic part of "recent enough", shared by client and
    server.  Temporal and Diff coherence need extra state (a clock, the
    server's per-client byte counter) handled by their owners; for those
    this function only reports the trivial cases.
    """
    if client_version == 0:
        return True  # nothing cached at all
    if client_version >= current_version:
        return False  # already current
    if policy.kind == COHERENCE_FULL:
        return True
    if policy.kind == COHERENCE_DELTA:
        return current_version - client_version >= policy.param
    return False  # temporal/diff: decided elsewhere
