"""Applications built on InterWeave (the paper's evaluation workloads)."""
