"""Incremental sequence mining over InterWeave.

The paper's setup (Section 4.4): a *database server* reads from an active,
growing database and maintains the summary lattice; a *mining client*
answers queries from the lattice.  Both are InterWeave clients.  The
summary is initially generated from half the database; the server then
repeatedly folds in an additional 1% — so the structure changes slowly,
and a client under relaxed coherence can skip most updates.

The mining algorithm is level-wise sequence mining (GSP-flavoured, on
single-item steps): frequent length-k sequences are extended by frequent
items, candidates are counted against the processed prefix of the
database, and survivors enter the lattice.  Increments add each batch's
supports to existing nodes and promote newly frequent candidates.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence as PySequence, Tuple

from repro.apps.datamining.lattice import (
    LatticeReader,
    LatticeWriter,
    Sequence,
    count_support,
    supports,
)
from repro.apps.datamining.quest import CustomerSequence, Database


class DatabaseServer:
    """The writer: owns the raw database and maintains the shared lattice."""

    def __init__(self, client, segment_name: str, database: Database,
                 min_support_fraction: float = 0.02, max_length: int = 4):
        self.client = client
        self.segment = client.open_segment(segment_name)
        self.database = database
        self.min_support_fraction = min_support_fraction
        self.max_length = max_length
        self.writer = LatticeWriter(client, self.segment)
        self.processed: List[CustomerSequence] = []
        #: candidate sequences not yet frequent: sequence -> support so far
        self._candidates: Dict[Sequence, int] = {}

    # -- bootstrap -------------------------------------------------------------

    def build_initial(self, fraction: float = 0.5) -> None:
        """Mine the first ``fraction`` of the database into a fresh lattice."""
        initial = self.database.slice(0.0, fraction)
        self.client.wl_acquire(self.segment)
        try:
            self.writer.initialize(self._min_support(len(initial)))
            self._mine_from_scratch(initial)
            self.writer.note_customers(len(initial))
        finally:
            self.client.wl_release(self.segment)
        self.processed.extend(initial)

    def _min_support(self, customers: int) -> int:
        return max(2, int(self.min_support_fraction * customers))

    def _mine_from_scratch(self, customers) -> None:
        threshold = self._min_support(len(customers))
        # level 1: frequent items
        item_counts: Counter = Counter()
        for customer in customers:
            seen = {item for txn in customer for item in txn}
            item_counts.update(seen)
        frontier: List[Sequence] = []
        for item, count in sorted(item_counts.items()):
            if count >= threshold:
                self.writer.insert((item,), count)
                frontier.append((item,))
        frequent_items = [sequence[0] for sequence in frontier]
        # levels 2..max: extend frequent sequences by frequent items
        for _ in range(1, self.max_length):
            next_frontier: List[Sequence] = []
            for prefix in frontier:
                for item in frequent_items:
                    candidate = prefix + (item,)
                    support = count_support(customers, candidate)
                    if support >= threshold:
                        self.writer.insert(candidate, support)
                        next_frontier.append(candidate)
                    else:
                        self._candidates[candidate] = support
            frontier = next_frontier
            if not frontier:
                break

    # -- increments -------------------------------------------------------------

    def apply_increment(self, fraction: float = 0.01) -> int:
        """Fold the next ``fraction`` of the database into the lattice.

        Returns the number of customers processed.  Produces one new
        segment version (one write critical section).
        """
        start = len(self.processed) / len(self.database)
        batch = self.database.slice(start, min(1.0, start + fraction))
        if not batch:
            return 0
        self.client.wl_acquire(self.segment)
        try:
            self._fold_in(batch)
            self.writer.note_customers(len(batch))
        finally:
            self.client.wl_release(self.segment)
        self.processed.extend(batch)
        return len(batch)

    def _fold_in(self, batch) -> None:
        threshold = self._min_support(len(self.processed) + len(batch))
        # bump existing nodes (in-place diffs)
        for sequence in self.writer.sequences():
            delta = count_support(batch, sequence)
            if delta:
                self.writer.bump_support(sequence, delta)
        # advance candidates; promote the newly frequent (new blocks)
        promoted: List[Sequence] = []
        for candidate in list(self._candidates):
            if self.writer.node(candidate[:-1]) is None:
                continue  # parent itself not frequent yet
            self._candidates[candidate] += count_support(batch, candidate)
            if self._candidates[candidate] >= threshold:
                support = self._candidates.pop(candidate)
                self.writer.insert(candidate, support)
                promoted.append(candidate)
        # newly frequent sequences spawn fresh candidates
        for sequence in promoted:
            if len(sequence) < self.max_length:
                for item in self._frequent_items():
                    extension = sequence + (item,)
                    if self.writer.node(extension) is None:
                        self._candidates.setdefault(
                            extension,
                            count_support(self.processed, extension)
                            + count_support(batch, extension))

    def _frequent_items(self) -> List[int]:
        return [sequence[0] for sequence in self.writer.sequences()
                if len(sequence) == 1]


class MiningClient:
    """The reader: answers mining queries from its cached lattice copy."""

    def __init__(self, client, segment_name: str):
        self.client = client
        self.segment = client.open_segment(segment_name, create=False)
        self.reader = LatticeReader(client, self.segment)

    def refresh(self) -> None:
        """One read critical section (validates per the coherence model)."""
        self.client.rl_acquire(self.segment)
        self.client.rl_release(self.segment)

    def query_support(self, sequence: PySequence) -> int:
        self.client.rl_acquire(self.segment)
        try:
            return self.reader.support_of(tuple(sequence)) or 0
        finally:
            self.client.rl_release(self.segment)

    def top_sequences(self, k: int = 10,
                      min_length: int = 2) -> List[Tuple[Sequence, int]]:
        self.client.rl_acquire(self.segment)
        try:
            return self.reader.top_sequences(k, min_length)
        finally:
            self.client.rl_release(self.segment)

    def lattice_size(self) -> int:
        self.client.rl_acquire(self.segment)
        try:
            return self.reader.node_count()
        finally:
            self.client.rl_release(self.segment)
