"""Incremental sequence mining (the paper's Section 4.4 application)."""

from repro.apps.datamining.lattice import (
    LAT_NODE,
    LAT_ROOT,
    LATTICE_IDL,
    LatticeReader,
    LatticeWriter,
    count_support,
    supports,
)
from repro.apps.datamining.mining import DatabaseServer, MiningClient
from repro.apps.datamining.quest import Database, QuestConfig, generate, paper_config

__all__ = [
    "Database",
    "DatabaseServer",
    "LAT_NODE",
    "LAT_ROOT",
    "LATTICE_IDL",
    "LatticeReader",
    "LatticeWriter",
    "MiningClient",
    "QuestConfig",
    "count_support",
    "generate",
    "paper_config",
    "supports",
]
