"""Quest-style synthetic market-basket data.

The paper's datamining experiment uses a database produced by IBM's Quest
synthetic data generator [Srikant & Agrawal 1994]: 100,000 customers, 1000
distinct items, an average of 1.25 transactions per customer, and 5000
potentially frequent sequence patterns of average length 4, for ~20 MB of
data.  The generator below reproduces that model:

1. draw a pool of *pattern sequences* — short sequences of itemsets whose
   items are skewed toward popular items (a truncated geometric rank
   distribution, mimicking Quest's corruption-free core);
2. each customer picks a few patterns (geometric), interleaves their
   itemsets into a personal sequence of transactions, and sprinkles in
   noise items;
3. transaction and sequence lengths are Poisson-like around their means.

Everything is driven by ``numpy.random.Generator`` with a caller-supplied
seed, so databases are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

Transaction = Tuple[int, ...]
CustomerSequence = Tuple[Transaction, ...]


@dataclass(frozen=True)
class QuestConfig:
    """Generator parameters (paper defaults, scaled by the caller)."""

    num_customers: int = 100_000
    num_items: int = 1000
    avg_transactions_per_customer: float = 1.25
    num_patterns: int = 5000
    avg_pattern_length: int = 4
    avg_items_per_transaction: float = 2.5
    patterns_per_customer: float = 1.5
    noise_item_probability: float = 0.1
    seed: int = 20030519  # ICDCS'03

    def __post_init__(self):
        if self.num_customers < 1 or self.num_items < 2 or self.num_patterns < 1:
            raise ValueError("QuestConfig parameters out of range")


@dataclass
class Database:
    """A generated customer-sequence database."""

    config: QuestConfig
    customers: List[CustomerSequence] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.customers)

    def slice(self, start_fraction: float, end_fraction: float) -> List[CustomerSequence]:
        """Customers in [start, end) as fractions of the database — the
        paper trains on the first half, then feeds 1% increments."""
        total = len(self.customers)
        lo = int(start_fraction * total)
        hi = int(end_fraction * total)
        return self.customers[lo:hi]

    @property
    def total_items(self) -> int:
        return sum(len(txn) for customer in self.customers for txn in customer)


def _skewed_items(rng: np.random.Generator, num_items: int, count: int) -> List[int]:
    """Item ids skewed toward low ranks (popular items), like Quest."""
    ranks = rng.geometric(p=min(0.999, 8.0 / num_items), size=count)
    return [int((rank - 1) % num_items) for rank in ranks]


def _positive_poisson(rng: np.random.Generator, mean: float) -> int:
    return max(1, int(rng.poisson(max(0.05, mean - 1)) + 1))


def generate_patterns(config: QuestConfig,
                      rng: np.random.Generator) -> List[CustomerSequence]:
    """The pool of potentially frequent sequence patterns."""
    patterns: List[CustomerSequence] = []
    for _ in range(config.num_patterns):
        length = _positive_poisson(rng, config.avg_pattern_length)
        itemsets = []
        for _ in range(length):
            size = _positive_poisson(rng, config.avg_items_per_transaction / 2)
            items = sorted(set(_skewed_items(rng, config.num_items, size)))
            itemsets.append(tuple(items))
        patterns.append(tuple(itemsets))
    return patterns


def generate(config: QuestConfig) -> Database:
    """Generate a full customer-sequence database."""
    rng = np.random.default_rng(config.seed)
    patterns = generate_patterns(config, rng)
    weights = rng.exponential(size=len(patterns))
    weights /= weights.sum()
    database = Database(config)
    for _ in range(config.num_customers):
        num_transactions = _positive_poisson(
            rng, config.avg_transactions_per_customer)
        pattern_count = _positive_poisson(rng, config.patterns_per_customer)
        chosen = rng.choice(len(patterns), size=pattern_count, p=weights)
        # interleave the chosen patterns' itemsets across the customer's
        # transactions, then add noise
        pool: List[Tuple[int, ...]] = []
        for index in chosen:
            pool.extend(patterns[index])
        rng.shuffle(pool)
        transactions: List[Transaction] = []
        per_transaction = max(1, len(pool) // num_transactions)
        for start in range(0, len(pool), per_transaction):
            merged = set()
            for itemset in pool[start:start + per_transaction]:
                merged.update(itemset)
            if rng.random() < config.noise_item_probability:
                merged.update(_skewed_items(rng, config.num_items, 1))
            if merged:
                transactions.append(tuple(sorted(merged)))
            if len(transactions) == num_transactions:
                break
        if not transactions:
            transactions = [tuple(sorted(set(
                _skewed_items(rng, config.num_items, 2))))]
        database.customers.append(tuple(transactions))
    return database


def paper_config(scale: float = 1.0, seed: int = 20030519) -> QuestConfig:
    """The paper's parameters, optionally scaled down for laptop runs.

    ``scale=1.0`` is the full 100k-customer database; the benchmarks use
    a smaller scale and report it.
    """
    return QuestConfig(
        num_customers=max(1, int(100_000 * scale)),
        num_items=1000,
        avg_transactions_per_customer=1.25,
        num_patterns=max(1, int(5000 * scale)),
        avg_pattern_length=4,
        seed=seed,
    )
