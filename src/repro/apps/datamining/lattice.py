"""The shared sequence lattice.

The paper's datamining application shares a "summary data structure (a
lattice of item sequences)" between a database server and mining clients.
Each node represents a potentially meaningful sequence of purchases and
carries pointers to the sequences it prefixes — approximately one third of
the structure's bytes are pointers, which is what makes it a stress test
for InterWeave's swizzling.

Here the lattice is a trie kept in one InterWeave segment:

- ``lat_root`` (the named block ``"root"``) holds progress counters and a
  pointer to the first level-1 node;
- every ``lat_node`` holds the item extending its parent's sequence, the
  support count of the full sequence ending at it, a ``child`` pointer to
  its first extension, and a ``sibling`` pointer to the next alternative.

The database server updates supports in place and links in new nodes as
they become frequent, so successive versions differ by small diffs — the
behaviour Figure 7 measures.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.idl import compile_idl

#: The lattice's shared types, exactly as a C client would declare them.
LATTICE_IDL = """
struct lat_node {
    int item;
    int support;
    lat_node *child;
    lat_node *sibling;
};

struct lat_root {
    int num_nodes;
    int customers_seen;
    int min_support;
    lat_node *first;
};
"""

_compiled = compile_idl(LATTICE_IDL)
LAT_NODE = _compiled["lat_node"]
LAT_ROOT = _compiled["lat_root"]

Sequence = Tuple[int, ...]


def supports(customer, sequence: Sequence) -> bool:
    """Does a customer's transaction sequence contain ``sequence``?

    Standard sequential containment: the items must appear in order, each
    in a strictly later transaction than the previous one.
    """
    position = 0
    for item in sequence:
        while position < len(customer) and item not in customer[position]:
            position += 1
        if position == len(customer):
            return False
        position += 1
    return True


def count_support(customers, sequence: Sequence) -> int:
    return sum(1 for customer in customers if supports(customer, sequence))


class LatticeWriter:
    """The database server's handle on the shared lattice.

    Owns the write side: creating the root, inserting nodes, and bumping
    supports.  All methods must be called inside a write critical section
    on the segment.
    """

    def __init__(self, client, segment):
        self.client = client
        self.segment = segment
        self._nodes: Dict[Sequence, object] = {}  # sequence -> node accessor

    # -- structure ------------------------------------------------------------

    def initialize(self, min_support: int) -> None:
        root = self.client.malloc(self.segment, LAT_ROOT, name="root")
        root.num_nodes = 0
        root.customers_seen = 0
        root.min_support = min_support
        root.first = None

    @property
    def root(self):
        return self.client.accessor_for(self.segment, "root")

    def node(self, sequence: Sequence):
        return self._nodes.get(sequence)

    def insert(self, sequence: Sequence, support: int):
        """Link a new frequent sequence into the trie (parent must exist)."""
        if sequence in self._nodes:
            raise ValueError(f"sequence {sequence} already in lattice")
        node = self.client.malloc(self.segment, LAT_NODE)
        node.item = sequence[-1]
        node.support = support
        node.child = None
        root = self.root
        if len(sequence) == 1:
            node.sibling = root.first
            root.first = node
        else:
            parent = self._nodes[sequence[:-1]]
            node.sibling = parent.child
            parent.child = node
        root.num_nodes = root.num_nodes + 1
        self._nodes[sequence] = node
        return node

    def bump_support(self, sequence: Sequence, delta: int) -> None:
        node = self._nodes[sequence]
        node.support = node.support + delta

    def note_customers(self, count: int) -> None:
        root = self.root
        root.customers_seen = root.customers_seen + count

    def sequences(self) -> List[Sequence]:
        return list(self._nodes.keys())


class LatticeReader:
    """A mining client's read-side view of the shared lattice.

    Walks the trie through swizzled pointers under a read lock; the
    coherence model on the segment decides how fresh the answers are.
    """

    def __init__(self, client, segment):
        self.client = client
        self.segment = segment

    @property
    def root(self):
        return self.client.accessor_for(self.segment, "root")

    def walk(self) -> Iterator[Tuple[Sequence, int]]:
        """Yield (sequence, support) for every lattice node."""

        def recurse(node, prefix: Sequence):
            while node is not None:
                sequence = prefix + (node.item,)
                yield (sequence, node.support)
                yield from recurse(node.child, sequence)
                node = node.sibling

        yield from recurse(self.root.first, ())

    def support_of(self, sequence: Sequence) -> Optional[int]:
        """Support of one sequence, or None if it is not in the lattice."""
        node = self.root.first
        depth = 0
        while node is not None and depth < len(sequence):
            if node.item == sequence[depth]:
                depth += 1
                if depth == len(sequence):
                    return node.support
                node = node.child
            else:
                node = node.sibling
        return None

    def top_sequences(self, k: int, min_length: int = 1) -> List[Tuple[Sequence, int]]:
        """The k highest-support sequences of at least ``min_length`` items."""
        found = [(sequence, support) for sequence, support in self.walk()
                 if len(sequence) >= min_length]
        found.sort(key=lambda entry: (-entry[1], entry[0]))
        return found[:k]

    def node_count(self) -> int:
        return self.root.num_nodes
