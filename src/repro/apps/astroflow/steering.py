"""Computational steering for Astroflow.

The paper's group connected the simulator and visualizer "to support
on-line visualization *and steering*": the person at the front end does
not just watch — they adjust the running simulation.  With shared state
the mechanism is trivial and needs no new protocol: the control knobs are
just another block in the segment.  The front end writes them under a
write lock; the simulator reads them at the top of every step under a
read lock (its own cached copy, validated by its coherence model).

``steer_params`` holds the knobs this simulator understands:

- ``diffusion``      — the gas diffusion coefficient;
- ``dt``             — the timestep;
- ``inject_rate``    — energy added at the injection site each step;
- ``inject_x/y``     — where the injection sits (the front end can drag
  the source around the grid);
- ``paused``         — nonzero freezes the simulation;
- ``generation``     — bumped on every steering change, so the simulator
  can cheaply log "controls changed".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.idl import compile_idl

STEERING_IDL = """
struct steer_params {
    double diffusion;
    double dt;
    double inject_rate;
    int inject_x;
    int inject_y;
    int paused;
    int generation;
};
"""

STEER_PARAMS = compile_idl(STEERING_IDL)["steer_params"]


@dataclass(frozen=True)
class Controls:
    """A plain snapshot of the steering block."""

    diffusion: float
    dt: float
    inject_rate: float
    inject_x: int
    inject_y: int
    paused: bool
    generation: int


class SteeringPanel:
    """The front end's write handle on the simulation controls."""

    def __init__(self, client, segment_name: str):
        self.client = client
        self.segment = client.open_segment(segment_name)

    def install_defaults(self, simulator) -> None:
        """Create the steering block (call once, typically by the engine)."""
        client, segment = self.client, self.segment
        client.wl_acquire(segment)
        try:
            params = client.malloc(segment, STEER_PARAMS, name="steering")
            params.diffusion = simulator.diffusion
            params.dt = simulator.dt
            params.inject_rate = 0.0
            params.inject_x = simulator.nx // 2
            params.inject_y = simulator.ny // 2
            params.paused = 0
            params.generation = 0
        finally:
            client.wl_release(segment)

    def adjust(self, **changes) -> int:
        """Write new knob values; returns the new generation number."""
        legal = {"diffusion", "dt", "inject_rate", "inject_x", "inject_y",
                 "paused"}
        unknown = set(changes) - legal
        if unknown:
            raise ValueError(f"unknown steering knobs: {sorted(unknown)}")
        client, segment = self.client, self.segment
        client.wl_acquire(segment)
        try:
            params = client.accessor_for(segment, "steering")
            for knob, value in changes.items():
                if knob == "paused":
                    value = 1 if value else 0
                setattr(params, knob, value)
            params.generation = params.generation + 1
            return params.generation
        finally:
            client.wl_release(segment)

    def read(self) -> Controls:
        client, segment = self.client, self.segment
        client.rl_acquire(segment)
        try:
            return _snapshot(client.accessor_for(segment, "steering"))
        finally:
            client.rl_release(segment)


def _snapshot(params) -> Controls:
    return Controls(
        diffusion=params.diffusion,
        dt=params.dt,
        inject_rate=params.inject_rate,
        inject_x=params.inject_x,
        inject_y=params.inject_y,
        paused=bool(params.paused),
        generation=params.generation,
    )


class SteeredSimulator:
    """Wraps an :class:`AstroflowSimulator` with steering awareness.

    Call :meth:`step` instead of the simulator's: it consults the shared
    controls first (one read critical section — local unless the front
    end changed something), applies them, then advances the model if not
    paused.
    """

    def __init__(self, simulator, panel: SteeringPanel):
        self.simulator = simulator
        self.panel = panel
        self.last_generation = -1
        self.generations_seen = 0

    def step(self) -> bool:
        """Returns True if the simulation advanced (False while paused)."""
        controls = self.panel.read()
        if controls.generation != self.last_generation:
            self.last_generation = controls.generation
            self.generations_seen += 1
            self.simulator.diffusion = controls.diffusion
            self.simulator.dt = controls.dt
        if controls.paused:
            return False
        if controls.inject_rate > 0:
            y = controls.inject_y % self.simulator.ny
            x = controls.inject_x % self.simulator.nx
            self.simulator.energy[y, x] += controls.inject_rate
            self.simulator.density[y, x] += controls.inject_rate * 0.05
        self.simulator.step()
        return True
