"""The Astroflow simulation engine.

Astroflow is a computational fluid dynamics system used to study the birth
and death of stars; its Fortran simulation engine ran on an AlphaServer
cluster and originally dumped frames to files for off-line visualization.
The paper's group replaced the file with an InterWeave segment, connecting
the simulator and the Java visualizer directly.

This module is the simulation-engine stand-in: a 2-D explicit
finite-difference gas model (diffusion plus an expanding injection front —
a stylized supernova remnant).  Each ``step()`` runs one write critical
section on the shared segment, updating the density and energy grids and
the frame header; because the active front only covers part of the grid,
successive versions differ by genuine partial diffs.
"""

from __future__ import annotations

import numpy as np

from repro.idl import compile_idl
from repro.types import ArrayDescriptor, DOUBLE

ASTRO_IDL = """
struct astro_header {
    int step;
    double sim_time;
    int nx;
    int ny;
    double dt;
    double total_mass;
};
"""

ASTRO_HEADER = compile_idl(ASTRO_IDL)["astro_header"]


class AstroflowSimulator:
    """Runs the gas model and publishes frames into a shared segment."""

    def __init__(self, client, segment_name: str, nx: int = 64, ny: int = 64,
                 dt: float = 0.1, diffusion: float = 0.15):
        if nx < 8 or ny < 8:
            raise ValueError("grid must be at least 8x8")
        self.client = client
        self.segment = client.open_segment(segment_name)
        self.nx = nx
        self.ny = ny
        self.dt = dt
        self.diffusion = diffusion
        self.step_count = 0
        self.density = np.full((ny, nx), 0.05)
        self.energy = np.zeros((ny, nx))
        # the initial blast: a dense, hot core at the grid centre
        cy, cx = ny // 2, nx // 2
        self.density[cy - 1:cy + 2, cx - 1:cx + 2] = 10.0
        self.energy[cy, cx] = 100.0
        self._publish_initial()

    # -- shared segment management ------------------------------------------------

    def _publish_initial(self) -> None:
        grid_type = ArrayDescriptor(DOUBLE, self.nx * self.ny)
        self.client.wl_acquire(self.segment)
        try:
            header = self.client.malloc(self.segment, ASTRO_HEADER, name="header")
            header.step = 0
            header.sim_time = 0.0
            header.nx = self.nx
            header.ny = self.ny
            header.dt = self.dt
            header.total_mass = float(self.density.sum())
            density = self.client.malloc(self.segment, grid_type, name="density")
            density.write_values(self.density.ravel())
            energy = self.client.malloc(self.segment, grid_type, name="energy")
            energy.write_values(self.energy.ravel())
        finally:
            self.client.wl_release(self.segment)

    # -- physics ---------------------------------------------------------------------

    def _advance(self) -> np.ndarray:
        """One explicit step; returns the mask of meaningfully changed cells."""
        before_density = self.density.copy()
        laplacian = (
            np.roll(self.density, 1, 0) + np.roll(self.density, -1, 0)
            + np.roll(self.density, 1, 1) + np.roll(self.density, -1, 1)
            - 4 * self.density)
        energy_gradient = (
            np.roll(self.energy, 1, 0) + np.roll(self.energy, -1, 0)
            + np.roll(self.energy, 1, 1) + np.roll(self.energy, -1, 1)
            - 4 * self.energy)
        self.density = self.density + self.dt * (
            self.diffusion * laplacian + 0.02 * energy_gradient)
        self.energy = self.energy + self.dt * (
            0.5 * (np.roll(self.energy, 1, 0) + np.roll(self.energy, -1, 0)
                   + np.roll(self.energy, 1, 1) + np.roll(self.energy, -1, 1)
                   - 4 * self.energy))
        np.clip(self.density, 1e-6, None, out=self.density)
        np.clip(self.energy, 0.0, None, out=self.energy)
        return np.abs(self.density - before_density) > 1e-12

    def step(self) -> int:
        """Advance one timestep and publish the frame; returns cells changed."""
        changed = self._advance()
        self.step_count += 1
        self.client.wl_acquire(self.segment)
        try:
            header = self.client.accessor_for(self.segment, "header")
            header.step = self.step_count
            header.sim_time = self.step_count * self.dt
            header.total_mass = float(self.density.sum())
            density = self.client.accessor_for(self.segment, "density")
            energy = self.client.accessor_for(self.segment, "energy")
            # write only the changed rows: the simulator knows its active
            # region, and row-granular stores keep fault counts realistic
            for row in np.flatnonzero(changed.any(axis=1)):
                start = int(row) * self.nx
                density.write_values(self.density[row], start=start)
                energy.write_values(self.energy[row], start=start)
        finally:
            self.client.wl_release(self.segment)
        return int(changed.sum())

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()
