"""Astroflow: on-line simulation + visualization + steering (Section 4.5)."""

from repro.apps.astroflow.simulator import ASTRO_HEADER, ASTRO_IDL, AstroflowSimulator
from repro.apps.astroflow.steering import (
    Controls,
    STEER_PARAMS,
    STEERING_IDL,
    SteeredSimulator,
    SteeringPanel,
)
from repro.apps.astroflow.visualizer import AstroflowVisualizer, Frame

__all__ = [
    "ASTRO_HEADER",
    "ASTRO_IDL",
    "AstroflowSimulator",
    "AstroflowVisualizer",
    "Controls",
    "Frame",
    "STEER_PARAMS",
    "STEERING_IDL",
    "SteeredSimulator",
    "SteeringPanel",
]
