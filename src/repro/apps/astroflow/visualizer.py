"""The Astroflow visualization client.

The original visualizer is a Java tool on a desktop machine; with
InterWeave it maps the simulation segment directly and "can control the
frequency of updates from the simulator simply by specifying a temporal
bound on relaxed coherence."  This client does the same: it opens the
segment read-only under a chosen (typically temporal) coherence policy and
renders frames — here as summary statistics, a contour count, and an
ASCII heat map suitable for a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.coherence import CoherencePolicy


@dataclass
class Frame:
    """One observed frame of the simulation."""

    step: int
    sim_time: float
    total_mass: float
    peak_density: float
    mean_density: float
    front_cells: int  # cells above the contour threshold

    def __str__(self):
        return (f"step {self.step:5d} t={self.sim_time:8.2f} "
                f"mass={self.total_mass:10.3f} peak={self.peak_density:8.3f} "
                f"front={self.front_cells}")


class AstroflowVisualizer:
    """Consumes frames from the shared segment."""

    def __init__(self, client, segment_name: str,
                 policy: Optional[CoherencePolicy] = None,
                 contour_threshold: float = 0.5):
        self.client = client
        self.segment = client.open_segment(segment_name, create=False)
        if policy is not None:
            client.set_coherence(self.segment, policy)
        self.contour_threshold = contour_threshold
        self.frames: List[Frame] = []

    def _read_grid(self) -> tuple:
        header = self.client.accessor_for(self.segment, "header")
        nx, ny = header.nx, header.ny
        density = np.asarray(
            self.client.accessor_for(self.segment, "density").read_values()
        ).reshape(ny, nx)
        return header, density

    def observe(self) -> Frame:
        """One read critical section: validate (per the coherence policy),
        then compute the frame summary from the cached copy."""
        self.client.rl_acquire(self.segment)
        try:
            header, density = self._read_grid()
            frame = Frame(
                step=header.step,
                sim_time=header.sim_time,
                total_mass=header.total_mass,
                peak_density=float(density.max()),
                mean_density=float(density.mean()),
                front_cells=int((density > self.contour_threshold).sum()),
            )
        finally:
            self.client.rl_release(self.segment)
        self.frames.append(frame)
        return frame

    def render_ascii(self, width: int = 32, height: int = 16) -> str:
        """A terminal heat map of the current cached density field."""
        self.client.rl_acquire(self.segment)
        try:
            _, density = self._read_grid()
        finally:
            self.client.rl_release(self.segment)
        ny, nx = density.shape
        rows = []
        ramp = " .:-=+*#%@"
        floor = float(density.min())
        span = max(float(density.max()) - floor, 1e-12)
        for row_index in np.linspace(0, ny - 1, height).astype(int):
            row = []
            for col_index in np.linspace(0, nx - 1, width).astype(int):
                value = (density[row_index, col_index] - floor) / span
                level = min(len(ramp) - 1, int(value * (len(ramp) - 1) + 0.5))
                row.append(ramp[level])
            rows.append("".join(row))
        return "\n".join(rows)

    def staleness(self, simulator_step: int) -> int:
        """How many steps behind the last observed frame is."""
        if not self.frames:
            return simulator_step
        return simulator_step - self.frames[-1].step
