"""Run (half-open interval) algebra.

Diffs in InterWeave are run-length encoded: a change is a *run* — a start
offset and a length, both in primitive data units (wire side) or words
(page-diffing side).  This module centralizes the interval arithmetic those
layers share: normalization, merging, splicing small gaps (the paper's
"diff run splicing" optimization), intersection, and coverage accounting.

Runs are ``(start, length)`` tuples with ``length > 0``, interpreted as the
half-open interval ``[start, start + length)``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

Run = Tuple[int, int]


def normalize(runs: Iterable[Run]) -> List[Run]:
    """Sort runs and merge overlapping or adjacent ones."""
    ordered = sorted((start, length) for start, length in runs if length > 0)
    merged: List[Run] = []
    for start, length in ordered:
        if merged and start <= merged[-1][0] + merged[-1][1]:
            prev_start, prev_length = merged[-1]
            merged[-1] = (prev_start, max(prev_start + prev_length, start + length) - prev_start)
        else:
            merged.append((start, length))
    return merged


def splice(runs: Iterable[Run], max_gap: int) -> List[Run]:
    """Merge runs separated by gaps of at most ``max_gap`` units.

    This is the paper's *diff run splicing*: it costs two words to encode a
    run header, so when one or two unchanged words sit between two changed
    runs it is cheaper (and faster to apply) to transmit the gap as if it
    had changed.  ``max_gap=0`` degenerates to :func:`normalize`.
    """
    merged: List[Run] = []
    for start, length in normalize(runs):
        if merged and start - (merged[-1][0] + merged[-1][1]) <= max_gap:
            prev_start = merged[-1][0]
            merged[-1] = (prev_start, start + length - prev_start)
        else:
            merged.append((start, length))
    return merged


def intersect(runs: Iterable[Run], window_start: int, window_length: int) -> List[Run]:
    """Clip runs to the window ``[window_start, window_start + window_length)``."""
    window_end = window_start + window_length
    clipped: List[Run] = []
    for start, length in runs:
        lo = max(start, window_start)
        hi = min(start + length, window_end)
        if lo < hi:
            clipped.append((lo, hi - lo))
    return clipped


def shift(runs: Iterable[Run], delta: int) -> List[Run]:
    """Translate every run by ``delta`` units."""
    return [(start + delta, length) for start, length in runs]


def total_length(runs: Iterable[Run]) -> int:
    """Units covered, assuming the runs are already disjoint."""
    return sum(length for _, length in runs)


def complement(runs: Iterable[Run], window_start: int, window_length: int) -> List[Run]:
    """Return the gaps inside the window not covered by ``runs``."""
    gaps: List[Run] = []
    cursor = window_start
    window_end = window_start + window_length
    for start, length in intersect(normalize(runs), window_start, window_length):
        if start > cursor:
            gaps.append((cursor, start - cursor))
        cursor = start + length
    if cursor < window_end:
        gaps.append((cursor, window_end - cursor))
    return gaps
