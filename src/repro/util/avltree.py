"""A self-balancing (AVL) ordered map.

InterWeave's metadata is dominated by balanced search trees: the client
keeps blocks sorted by serial number, by symbolic name, and by address
(``blk_number_tree``, ``blk_name_tree``, ``blk_addr_tree``), plus a global
tree of subsegments sorted by address (``subseg_addr_tree``); the server
keeps blocks by serial number (``svr_blk_number_tree``) and version markers
by version (``marker_version_tree``).  All of those are instances of this
class.

Beyond the usual ordered-map operations, the lookups the paper's algorithms
need are *floor* searches ("the block/subsegment spanning this address" =
greatest key <= address) and ordered iteration from a key ("the first
marker newer than the client's version" = successor search), so both are
first-class operations here.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key, value):
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """An ordered map with floor/ceiling search and range iteration.

    Keys must be mutually comparable.  ``None`` is a legal value but not a
    legal key.
    """

    def __init__(self, items=None):
        self._root: Optional[_Node] = None
        self._size = 0
        if items:
            for key, value in items:
                self[key] = value

    # -- basic map protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key) -> bool:
        return self._find(key) is not None

    def __getitem__(self, key):
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    def get(self, key, default=None):
        node = self._find(key)
        return node.value if node is not None else default

    def __setitem__(self, key, value) -> None:
        self._root, inserted = self._insert(self._root, key, value)
        if inserted:
            self._size += 1

    def __delitem__(self, key) -> None:
        self._root, removed = self._delete(self._root, key)
        if not removed:
            raise KeyError(key)
        self._size -= 1

    def pop(self, key, *default):
        node = self._find(key)
        if node is None:
            if default:
                return default[0]
            raise KeyError(key)
        value = node.value
        del self[key]
        return value

    def clear(self) -> None:
        self._root = None
        self._size = 0

    # -- ordered searches ----------------------------------------------------

    def floor(self, key) -> Optional[Tuple[Any, Any]]:
        """Return the (key, value) pair with the greatest key <= ``key``."""
        node, best = self._root, None
        while node is not None:
            if node.key == key:
                return (node.key, node.value)
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best is not None else None

    def ceiling(self, key) -> Optional[Tuple[Any, Any]]:
        """Return the (key, value) pair with the least key >= ``key``."""
        node, best = self._root, None
        while node is not None:
            if node.key == key:
                return (node.key, node.value)
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best is not None else None

    def successor(self, key) -> Optional[Tuple[Any, Any]]:
        """Return the (key, value) pair with the least key strictly > ``key``."""
        node, best = self._root, None
        while node is not None:
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best is not None else None

    def min(self) -> Optional[Tuple[Any, Any]]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return (node.key, node.value)

    def max(self) -> Optional[Tuple[Any, Any]]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return (node.key, node.value)

    # -- iteration -----------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs in ascending key order."""
        stack, node = [], self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def items_from(self, key, inclusive=True) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs in ascending order starting at ``key``.

        With ``inclusive=False`` this is the paper's "first marker whose
        version is newer than the client's version" traversal.
        """
        stack, node = [], self._root
        while stack or node is not None:
            while node is not None:
                if node.key > key or (inclusive and node.key == key):
                    stack.append(node)
                    node = node.left
                else:
                    node = node.right
            if not stack:
                return
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    # -- internals -----------------------------------------------------------

    def _find(self, key) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def _insert(self, node: Optional[_Node], key, value):
        if node is None:
            return _Node(key, value), True
        if key == node.key:
            node.value = value
            return node, False
        if key < node.key:
            node.left, inserted = self._insert(node.left, key, value)
        else:
            node.right, inserted = self._insert(node.right, key, value)
        return (_rebalance(node) if inserted else node), inserted

    def _delete(self, node: Optional[_Node], key):
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._delete(node.left, key)
        elif key > node.key:
            node.right, removed = self._delete(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            # Replace with in-order successor.
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right, _ = self._delete(node.right, successor.key)
        return (_rebalance(node) if removed else node), removed

    # -- diagnostics ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate AVL balance and ordering; raises AssertionError if broken."""

        def recurse(node):
            if node is None:
                return 0, None, None
            left_h, left_min, left_max = recurse(node.left)
            right_h, right_min, right_max = recurse(node.right)
            assert abs(left_h - right_h) <= 1, "AVL balance violated"
            if left_max is not None:
                assert left_max < node.key, "BST order violated"
            if right_min is not None:
                assert node.key < right_min, "BST order violated"
            height = 1 + max(left_h, right_h)
            assert node.height == height, "cached height stale"
            low = left_min if left_min is not None else node.key
            high = right_max if right_max is not None else node.key
            return height, low, high

        recurse(self._root)
