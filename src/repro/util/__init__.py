"""Shared infrastructure: balanced trees, locks, clocks, run algebra."""

from repro.util.avltree import AVLTree
from repro.util.clock import Clock, VirtualClock, WallClock
from repro.util.rwlock import ReaderWriterLock
from repro.util import runs

__all__ = ["AVLTree", "Clock", "VirtualClock", "WallClock", "ReaderWriterLock", "runs"]
