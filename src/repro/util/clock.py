"""Virtual time.

Temporal coherence ("no more than *x* time units out of date") needs a
clock.  Real wall-clock time makes tests and benchmarks nondeterministic,
so the library routes every time read through a :class:`Clock` object:
:class:`WallClock` for deployments, :class:`VirtualClock` for tests,
simulations, and the reproduction experiments (where "time" advances with
simulated work, exactly as in a discrete-event simulation).
"""

from __future__ import annotations

import time


class Clock:
    """Interface: ``now()`` returns a monotonically nondecreasing float."""

    def now(self) -> float:
        raise NotImplementedError


class WallClock(Clock):
    """Real monotonic time, for live deployments."""

    def now(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """Deterministic, manually advanced time for simulation and tests."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` (must be >= 0); returns the new time."""
        if delta < 0:
            raise ValueError(f"time cannot move backwards (delta={delta})")
        self._now += delta
        return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError(f"time cannot move backwards ({timestamp} < {self._now})")
        self._now = float(timestamp)
