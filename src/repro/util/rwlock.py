"""A reader-writer lock.

InterWeave synchronization is segment-granularity reader-writer locking
(``IW_rl_acquire`` / ``IW_wl_acquire``).  The server arbitrates lock
requests between clients; this class provides the local arbiter used by the
server's lock manager and, in multi-threaded deployments, by the client
library to serialize its own threads.

The lock is writer-preferring: once a writer is waiting, new readers queue
behind it, which prevents writer starvation under a steady read load (the
behaviour the paper's applications — one producer, many visualization
readers — rely on).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReaderWriterLock:
    """Writer-preferring reader-writer lock for threads."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._max_readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self, timeout=None) -> bool:
        with self._cond:
            deadline = None if timeout is None else _deadline(timeout)
            while self._writer or self._writers_waiting:
                if not _wait(self._cond, deadline):
                    return False
            self._readers += 1
            if self._readers > self._max_readers:
                self._max_readers = self._readers
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without matching acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ----------------------------------------------------------

    def acquire_write(self, timeout=None) -> bool:
        with self._cond:
            deadline = None if timeout is None else _deadline(timeout)
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    if not _wait(self._cond, deadline):
                        return False
            finally:
                self._writers_waiting -= 1
            self._writer = True
            return True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without matching acquire_write")
            self._writer = False
            self._cond.notify_all()

    # -- context managers ----------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection ---------------------------------------------------------

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def max_readers(self) -> int:
        """High-water mark of simultaneous readers (proves real overlap)."""
        return self._max_readers

    @property
    def has_writer(self) -> bool:
        return self._writer


def _deadline(timeout):
    import time

    return time.monotonic() + timeout


def _wait(cond, deadline) -> bool:
    if deadline is None:
        cond.wait()
        return True
    import time

    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return False
    cond.wait(remaining)
    return True  # caller's while-loop re-checks the predicate and the deadline
