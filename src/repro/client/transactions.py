"""Transactional write sessions.

The paper closes with "we are incorporating transaction support into
InterWeave and studying the interplay of transactions, RPC, and global
shared state."  This module is that extension: a write critical section
that can *abort*, rolling the cached copy back to its pre-transaction
state, instead of shipping its diff.

The machinery is exactly the machinery modification tracking already
pays for:

- the twins created on write faults are pristine pre-transaction page
  images, so rollback is "copy every twin back over its page";
- blocks created inside the transaction are simply freed;
- frees requested inside the transaction are *deferred* (the block is
  hidden from lookups but its storage and metadata survive) and only
  executed at commit — so an abort can resurrect them bit-for-bit.

A transaction therefore forces diffing mode (no-diff mode keeps no twins
and could not roll back).  Commit is a normal write release: the diff the
server receives is indistinguishable from a plain critical section, so
transactions compose with every coherence model and with other clients
unchanged.
"""

from __future__ import annotations

from typing import List

from repro.errors import LockError
from repro.memory.heap import BlockInfo
from repro.wire.messages import LOCK_WRITE, LockReleaseRequest


class TransactionState:
    """Per-segment bookkeeping for an open transaction."""

    __slots__ = ("deferred_frees",)

    def __init__(self):
        self.deferred_frees: List[BlockInfo] = []


def begin(client, segment) -> None:
    """Open a transactional write critical section."""
    if segment.lock_mode is not None:
        raise LockError(f"segment {segment.name!r} is already locked")
    client.wl_acquire(segment)
    if not segment.session_diffed:
        # transactions need twins for rollback: force this session (and
        # only this session) back into diffing mode
        segment.session_diffed = True
        for subsegment in segment.heap.subsegments:
            subsegment.pagemap.clear()
            client.memory.protect_range(subsegment.base, subsegment.size)
    segment.transaction = TransactionState()


def defer_free(client, segment, block: BlockInfo) -> None:
    """Hide a block until commit; abort brings it back untouched."""
    heap = segment.heap
    del heap.blk_number_tree[block.serial]
    if block.name is not None:
        del heap.blk_name_tree[block.name]
    del block.subsegment.blk_addr_tree[block.address]
    segment.transaction.deferred_frees.append(block)


def commit(client, segment) -> None:
    """Execute deferred frees and release the write lock normally."""
    transaction = segment.transaction
    segment.transaction = None
    heap = segment.heap
    for block in transaction.deferred_frees:
        # re-link just long enough for the ordinary free path to run
        heap.blk_number_tree[block.serial] = block
        if block.name is not None:
            heap.blk_name_tree[block.name] = block
        block.subsegment.blk_addr_tree[block.address] = block
        heap.free(block)
        segment.freed.append(block.serial)
    client.wl_release(segment)


def abort(client, segment) -> None:
    """Roll back every modification and release the lock empty-handed."""
    if segment.lock_mode != LOCK_WRITE or segment.transaction is None:
        raise LockError(f"segment {segment.name!r} has no open transaction")
    transaction = segment.transaction
    segment.transaction = None
    memory = client.memory
    heap = segment.heap

    # 1. restore every twinned page (pre-transaction images)
    for subsegment in heap.subsegments:
        first_page = subsegment.first_page_number()
        for page_index, twin in subsegment.pagemap.items():
            page = memory.page(first_page + page_index)
            page.data[:] = twin
        subsegment.pagemap.clear()
        memory.unprotect_range(subsegment.base, subsegment.size)

    # 2. unwind creations (their metadata references die with them)
    for block in segment.created:
        heap.free(block)
    segment.created = []

    # 3. resurrect deferred frees
    for block in transaction.deferred_frees:
        heap.blk_number_tree[block.serial] = block
        if block.name is not None:
            heap.blk_name_tree[block.name] = block
        block.subsegment.blk_addr_tree[block.address] = block
    segment.freed = []

    # 4. release the server-side write lock without a diff
    client._rpc(segment.channel, LockReleaseRequest(
        segment.name, LOCK_WRITE, client.client_id, None))
    segment.lock_mode = None
    segment.lease_duration = 0.0
    segment.lease_acquired_at = None
    segment.poller.on_local_write(segment.version, client.clock.now())
