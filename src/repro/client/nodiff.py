"""No-diff mode.

As in TreadMarks' single-writer adaptation, a client that repeatedly
modifies most of a segment gains nothing from twins and word diffing — it
pays ``mprotect`` calls, page faults, twin copies, and a word-by-word
comparison only to discover that everything changed.  In *no-diff mode*
the library skips page protection entirely and transmits the whole segment
at every write-lock release; translating a whole block is also faster than
translating a diff of it.

The controller below decides the mode per segment:

- in diffing mode, after :data:`SWITCH_AFTER` consecutive write critical
  sections that each modified more than :data:`FRACTION_THRESHOLD` of the
  segment, switch to no-diff mode;
- in no-diff mode, every :data:`RESAMPLE_EVERY`-th critical section runs
  with diffing enabled as a probe; if the probe modifies less than the
  threshold, the segment returns to diffing mode (capturing changes in
  application behaviour, as the paper requires).
"""

from __future__ import annotations

#: fraction of the segment's primitive units above which diffing is a waste
FRACTION_THRESHOLD = 0.5

#: consecutive heavy-write critical sections before entering no-diff mode
SWITCH_AFTER = 3

#: in no-diff mode, probe with diffing every this many critical sections
RESAMPLE_EVERY = 8


class NoDiffController:
    """Per-segment diff/no-diff adaptation state machine."""

    __slots__ = ("enabled", "in_nodiff_mode", "_heavy_streak", "_nodiff_sections",
                 "mode_switches")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.in_nodiff_mode = False
        self._heavy_streak = 0
        self._nodiff_sections = 0
        self.mode_switches = 0

    def use_diffing_next(self) -> bool:
        """Should the upcoming write critical section protect pages and diff?"""
        if not self.enabled or not self.in_nodiff_mode:
            return True
        # periodic probe: run one diffed section to re-measure behaviour
        return (self._nodiff_sections + 1) % RESAMPLE_EVERY == 0

    def on_release(self, modified_fraction: float, was_diffed: bool) -> None:
        """Feed back what the finished critical section actually modified.

        ``modified_fraction`` is meaningful only when the section was
        diffed; no-diff sections ship everything and carry no signal.
        """
        if not self.enabled:
            return
        if self.in_nodiff_mode:
            self._nodiff_sections += 1
            if was_diffed and modified_fraction < FRACTION_THRESHOLD:
                self.in_nodiff_mode = False
                self.mode_switches += 1
                self._heavy_streak = 0
                self._nodiff_sections = 0
            return
        if modified_fraction > FRACTION_THRESHOLD:
            self._heavy_streak += 1
            if self._heavy_streak >= SWITCH_AFTER:
                self.in_nodiff_mode = True
                self.mode_switches += 1
                self._nodiff_sections = 0
        else:
            self._heavy_streak = 0
