"""Segment → server routing for the client library.

The paper binds a segment to "an InterWeave server at the IP address
corresponding to the segment's URL" — routing by name.  This module
makes that mapping a first-class, replaceable policy:

- :class:`StaticResolver` keeps the historical rule (the server is the
  first path component of the segment URL), optionally with a *default
  server* so bare names like ``"counters"`` route somewhere instead of
  erroring;
- :class:`~repro.cluster.DirectoryResolver` (in ``repro.cluster``)
  resolves names through a :class:`~repro.cluster.SegmentDirectory` and
  caches the returned bindings with their generation stamps.

The client calls :meth:`Resolver.on_redirect` whenever a server answers
with a WrongServer redirect and then resolves the name again, so every
resolver — including the static one, which keeps a small override map —
can chase a live migration.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SegmentError


class Resolver:
    """Maps a segment name to the server that currently serves it."""

    def resolve(self, segment_name: str) -> str:
        """The server name to connect to for ``segment_name``.

        Raises :class:`~repro.errors.SegmentError` when the name cannot
        be routed at all.
        """
        raise NotImplementedError

    def on_redirect(self, segment_name: str, origin: str,
                    generation: int) -> None:
        """A server redirected ``segment_name`` to ``origin``; remember
        the new binding so the next :meth:`resolve` follows it."""

    def invalidate(self, segment_name: str) -> None:
        """Drop any cached binding for ``segment_name`` (the client saw
        its server become unreachable); the next :meth:`resolve` should
        consult the authoritative source again.  Resolvers with no cache
        ignore this — re-resolving then yields the same answer, and the
        client correctly concludes there is nowhere to fail over to."""

    def close(self) -> None:
        """Release any connections the resolver holds."""


class StaticResolver(Resolver):
    """URL-prefix routing: ``"host/path"`` is served by ``"host"``.

    ``default_server`` routes segment names *without* a path separator
    (``"counters"``) to a fixed server instead of raising — the common
    single-server deployment where URLs need no prefix at all.  Without
    a default, bare names are rejected exactly as before.

    Redirects override the parsed prefix per segment (newest generation
    wins), so even a statically configured client follows a segment
    that a cluster migrated to a different origin.
    """

    def __init__(self, default_server: Optional[str] = None):
        self.default_server = default_server
        self._overrides: Dict[str, Tuple[str, int]] = {}

    def resolve(self, segment_name: str) -> str:
        override = self._overrides.get(segment_name)
        if override is not None:
            return override[0]
        server, separator, rest = segment_name.partition("/")
        if separator and server and rest:
            return server
        if not separator and segment_name and self.default_server:
            return self.default_server
        raise SegmentError(
            f"segment URL {segment_name!r} must look like 'server/path'"
            + ("" if self.default_server is None
               else f" (or a bare name, routed to {self.default_server!r})"))

    def on_redirect(self, segment_name: str, origin: str,
                    generation: int) -> None:
        current = self._overrides.get(segment_name)
        if current is None or generation >= current[1]:
            self._overrides[segment_name] = (origin, generation)
