"""The InterWeave client library."""

from repro.client.apply import ApplyStats, apply_update
from repro.client.client import (
    ClientOptions,
    ClientStats,
    InterWeaveClient,
    Segment,
)
from repro.client.collect import CollectTimers, collect_write_diff
from repro.client.nodiff import NoDiffController
from repro.client.routing import Resolver, StaticResolver
from repro.client import api

__all__ = [
    "ApplyStats",
    "ClientOptions",
    "ClientStats",
    "CollectTimers",
    "InterWeaveClient",
    "NoDiffController",
    "Resolver",
    "Segment",
    "StaticResolver",
    "api",
    "apply_update",
    "collect_write_diff",
]
