"""Client diff collection: twins -> word runs -> primitive runs -> wire.

When a process releases a write lock, the library gathers local changes
and converts them to machine-independent wire format.  The pipeline, per
Section 3.1 of the paper:

1. **word diffing** — scan the segment's subsegments and each subsegment's
   pagemap; for every twinned page, compare the current page against its
   twin word by word, yielding runs of contiguous modified words
   (``change_begin`` .. ``change_end``);
2. **run splicing** — if one or two unchanged words separate two modified
   runs, treat the whole stretch as changed: a run header already costs
   two words, and the spliced run is faster to apply;
3. **block mapping** — locate the blocks spanning each changed byte range
   through the subsegment's ``blk_addr_tree``;
4. **translation** — map changed bytes to primitive-unit runs through the
   block's type descriptor (compensating for byte order, alignment, and
   padding) and emit wire-format data, swizzling pointers to MIPs.

Steps 1 and 4 are timed separately into the client stats — they are the
"client word diffing" and "client translation" series of Figure 5.

Blocks created in the critical section are transmitted whole (their pages
may have twins, but they are excluded from word diffing); freed blocks
become tombstones.  In no-diff mode the whole segment is transmitted and
steps 1–3 are skipped entirely.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.memory.heap import BlockInfo, SegmentHeap, SubSegment
from repro.memory.mmu import AddressSpace
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.types import flat_layout
from repro.types.layout import merge_run_arrays
from repro.wire import (BlockDiff, DiffRun, SegmentDiff, TranslationContext,
                        block_diff_from_columns, collect_range)
from repro.wire.translate import collect_runs, collect_runs_columns

#: unchanged words between two changed runs that are spliced over
SPLICE_MAX_GAP_WORDS = 2


def word_diff_arrays(memory: AddressSpace, subsegment: SubSegment,
                     word_size: int, max_gap: int = 0):
    """Changed word runs vs. the twins, as numpy arrays (starts, ends).

    Offsets are subsegment-relative, in words.  Splicing happens *during*
    the scan, as in the C implementation: two changed words separated by
    at most ``max_gap`` unchanged ones stay in one run, so a change
    pattern like every-other-word (one word of every double) never
    materializes thousands of one-word runs.
    """
    page_words = subsegment.page_size // word_size
    first_page = subsegment.first_page_number()
    dtype = np.uint32 if word_size == 4 else np.uint64
    all_starts, all_ends = [], []
    for page_index in sorted(subsegment.pagemap):
        twin = subsegment.pagemap[page_index]
        current = memory.page(first_page + page_index).as_words(word_size)
        twin_words = np.frombuffer(twin, dtype=dtype)
        changed = np.flatnonzero(current != twin_words)
        if changed.size == 0:
            continue
        base = page_index * page_words
        # a gap of g unchanged words shows as an index delta of g+1
        breaks = np.flatnonzero(np.diff(changed) > max_gap + 1)
        starts = changed[np.concatenate(([0], breaks + 1))]
        ends = changed[np.concatenate((breaks, [changed.size - 1]))] + 1
        all_starts.append(starts + base)
        all_ends.append(ends + base)
    if not all_starts:
        empty = np.empty(0, np.int64)
        return empty, empty
    starts = np.concatenate(all_starts).astype(np.int64)
    ends = np.concatenate(all_ends).astype(np.int64)
    # pages were spliced independently; merge runs meeting at page edges
    return merge_run_arrays(starts, ends, max_gap)


def word_diff_pages(memory: AddressSpace, subsegment: SubSegment,
                    word_size: int, max_gap: int = 0) -> List[Tuple[int, int]]:
    """Tuple-returning wrapper around :func:`word_diff_arrays`."""
    starts, ends = word_diff_arrays(memory, subsegment, word_size, max_gap)
    return [(int(start), int(end - start)) for start, end in zip(starts, ends)]


def changed_byte_arrays(memory: AddressSpace, subsegment: SubSegment,
                        word_size: int, splice: bool = True):
    """Absolute changed byte ranges as arrays (starts, ends), spliced."""
    max_gap = SPLICE_MAX_GAP_WORDS if splice else 0
    starts, ends = word_diff_arrays(memory, subsegment, word_size, max_gap)
    return (subsegment.base + starts * word_size,
            subsegment.base + ends * word_size)


def changed_byte_runs(memory: AddressSpace, subsegment: SubSegment, word_size: int,
                      splice: bool = True) -> List[Tuple[int, int]]:
    """Absolute (address, length) byte runs of modification, spliced."""
    starts, ends = changed_byte_arrays(memory, subsegment, word_size, splice)
    return [(int(start), int(end - start)) for start, end in zip(starts, ends)]


def map_ranges_to_blocks(subsegment: SubSegment, byte_starts, byte_ends,
                         skip_serials, arch, coalesce_layouts: bool = True):
    """Map changed byte ranges onto blocks as primitive-unit run arrays.

    Word runs can span block boundaries (headers and all); each block\'s
    intersection is translated through its own layout, and bytes falling
    in headers, free space, or padding are dropped.  Returns a dict
    ``serial -> (prim_starts, prim_counts)`` numpy array pairs.

    The sweep is array-based: for each block the overlapping slice of the
    (sorted, disjoint) range arrays is found with searchsorted, clipped to
    the block, and handed to the layout\'s vectorized range mapper — so a
    fine-grained diff of tens of thousands of runs costs a few numpy
    passes, not a tree search per run.
    """
    per_block = {}
    byte_starts = np.asarray(byte_starts, dtype=np.int64)
    byte_ends = np.asarray(byte_ends, dtype=np.int64)
    if byte_starts.size == 0:
        return per_block
    window_lo = int(byte_starts[0])
    window_hi = int(byte_ends[-1])
    start_hit = subsegment.blk_addr_tree.floor(window_lo)
    items = subsegment.blk_addr_tree.items_from(
        start_hit[0] if start_hit is not None else window_lo)
    for address, block in items:
        if address >= window_hi:
            break
        if block.end <= window_lo or block.serial in skip_serials:
            continue
        # ranges possibly overlapping [block.address, block.end)
        lo_index = int(np.searchsorted(byte_ends, block.address, side="right"))
        hi_index = int(np.searchsorted(byte_starts, block.end, side="left"))
        if lo_index >= hi_index:
            continue
        los = np.clip(byte_starts[lo_index:hi_index] - block.address, 0, block.size)
        his = np.clip(byte_ends[lo_index:hi_index] - block.address, 0, block.size)
        keep = los < his
        if not keep.any():
            continue
        layout = flat_layout(block.descriptor, arch, coalesce_layouts)
        prim_starts, prim_counts = layout.prim_runs_for_byte_ranges(
            los[keep], his[keep])
        if prim_starts.size:
            per_block[block.serial] = (prim_starts, prim_counts)
    return per_block


def map_runs_to_blocks(subsegment: SubSegment, byte_runs, skip_serials, arch,
                       coalesce_layouts: bool = True) -> Dict[int, List[Tuple[int, int]]]:
    """Tuple-based wrapper around :func:`map_ranges_to_blocks`."""
    runs = sorted(byte_runs)
    starts = np.fromiter((s for s, _ in runs), np.int64, len(runs))
    ends = np.fromiter((s + c for s, c in runs), np.int64, len(runs))
    mapped = map_ranges_to_blocks(subsegment, starts, ends, skip_serials,
                                  arch, coalesce_layouts)
    return {serial: list(zip(prim_starts.tolist(), prim_counts.tolist()))
            for serial, (prim_starts, prim_counts) in mapped.items()}


class CollectTimers:
    """Separate accounting for the two phases of Figure 5."""

    __slots__ = ("word_diff_seconds", "translate_seconds")

    def __init__(self):
        self.word_diff_seconds = 0.0
        self.translate_seconds = 0.0

    def reset(self):
        self.word_diff_seconds = 0.0
        self.translate_seconds = 0.0


#: fraction of a block's units beyond which the whole block is sent:
#: "a client that repeatedly modifies most of the data in a segment (or a
#: block within a segment) will switch to ... transmit the whole segment
#: (or individual block)"; translating one dense run beats many partial
#: runs, at a bounded bandwidth premium.
BLOCK_FULL_THRESHOLD = 0.75


def collect_write_diff(tctx: TranslationContext, heap: SegmentHeap,
                       from_version: int,
                       created: List[BlockInfo],
                       freed_serials: List[int],
                       unknown_type_serials: Iterable[int],
                       use_diffing: bool,
                       splice: bool = True,
                       coalesce_layouts: bool = True,
                       timers: Optional[CollectTimers] = None,
                       registry=None,
                       block_full_threshold: Optional[float] = BLOCK_FULL_THRESHOLD,
                       metrics: Optional[MetricsRegistry] = None,
                       ) -> Tuple[SegmentDiff, int]:
    """Build the write-release diff for one segment.

    Returns ``(diff, modified_units)`` where ``modified_units`` counts the
    primitive units of *pre-existing* blocks found modified (the signal
    the no-diff controller adapts on).
    """
    timers = timers or CollectTimers()
    metrics = metrics or get_registry()
    word_diff_before = timers.word_diff_seconds
    translate_before = timers.translate_seconds
    arch = tctx.arch
    diff = SegmentDiff(heap.name, from_version, 0)
    if registry is not None:
        diff.new_types = [(serial, registry.encoded(serial))
                          for serial in unknown_type_serials]

    for serial in freed_serials:
        diff.block_diffs.append(BlockDiff(serial=serial, freed=True))

    created_serials = {block.serial for block in created}
    modified_units = 0

    if use_diffing:
        # phase 1+2: word diffing and splicing over every twinned page
        started = time.perf_counter()
        per_subsegment = [
            (subsegment, changed_byte_arrays(tctx.memory, subsegment,
                                             arch.word_size, splice))
            for subsegment in heap.subsegments if subsegment.pagemap
        ]
        timers.word_diff_seconds += time.perf_counter() - started
        # phase 3: block mapping (a block lives in exactly one subsegment,
        # so the per-subsegment dicts are disjoint)
        per_block = {}
        for subsegment, (byte_starts, byte_ends) in per_subsegment:
            per_block.update(map_ranges_to_blocks(
                subsegment, byte_starts, byte_ends, created_serials, arch,
                coalesce_layouts))
        # phase 4: translation
        started = time.perf_counter()
        for serial in sorted(per_block):
            block = heap.block_by_serial(serial)
            layout = flat_layout(block.descriptor, arch, coalesce_layouts)
            prim_starts, prim_counts = per_block[serial]
            if (block_full_threshold is not None and len(prim_starts) > 1
                    and int(prim_counts.sum())
                    >= block_full_threshold * layout.prim_count):
                # block-level no-diff: mostly modified, send it whole
                prim_starts = np.array([0], np.int64)
                prim_counts = np.array([layout.prim_count], np.int64)
            columns = collect_runs_columns(tctx, layout, block.address,
                                           prim_starts, prim_counts)
            if columns is not None:
                # columnar fast path: one gathered payload buffer, no
                # per-run DiffRun objects (an MB-scale scattered write
                # produces hundreds of thousands of runs)
                block_diff = block_diff_from_columns(serial, columns)
            else:
                buffers = collect_runs(tctx, layout, block.address,
                                       prim_starts, prim_counts)
                block_diff = BlockDiff(serial=serial, runs=[
                    DiffRun(start, count, buffer)
                    for start, count, buffer in zip(
                        prim_starts.tolist(), prim_counts.tolist(), buffers)
                ])
            modified_units += int(prim_counts.sum())
            diff.block_diffs.append(block_diff)
        timers.translate_seconds += time.perf_counter() - started
    else:
        # no-diff mode: transmit every pre-existing block in full
        started = time.perf_counter()
        for block in heap.blocks():
            if block.serial in created_serials:
                continue
            layout = flat_layout(block.descriptor, arch, coalesce_layouts)
            data = collect_range(tctx, layout, block.address, 0, layout.prim_count)
            diff.block_diffs.append(BlockDiff(
                serial=block.serial,
                runs=[DiffRun(0, layout.prim_count, data)]))
            modified_units += layout.prim_count
        timers.translate_seconds += time.perf_counter() - started

    # newly created blocks always go in full
    started = time.perf_counter()
    for block in created:
        layout = flat_layout(block.descriptor, arch, coalesce_layouts)
        data = collect_range(tctx, layout, block.address, 0, layout.prim_count)
        diff.block_diffs.append(BlockDiff(
            serial=block.serial, is_new=True, type_serial=block.type_serial,
            name=block.name, runs=[DiffRun(0, layout.prim_count, data)]))
    timers.translate_seconds += time.perf_counter() - started

    metrics.counter("client.collect.runs",
                    "diff collection executions (one per write release)").inc()
    if not use_diffing:
        metrics.counter("client.collect.nodiff_runs",
                        "collections that transmitted whole blocks").inc()
    metrics.counter("client.collect.diff_runs",
                    "RLE runs emitted by diff collection").inc(
        sum(len(bd.runs) for bd in diff.block_diffs))
    metrics.counter("client.collect.rle_bytes",
                    "wire payload bytes emitted by diff collection").inc(
        diff.payload_bytes())
    metrics.counter("client.collect.modified_units").inc(modified_units)
    metrics.histogram("client.collect.word_diff_seconds").observe(
        timers.word_diff_seconds - word_diff_before)
    metrics.histogram("client.collect.translate_seconds").observe(
        timers.translate_seconds - translate_before)
    return diff, modified_units
