"""The InterWeave client library.

A client process links this library to map cached copies of segments into
its (simulated) address space and access them with ordinary reads and
writes.  The library owns:

- the process's simulated memory, heap, and SIGSEGV-equivalent fault
  handler (twin creation for modification tracking);
- the cached-segment table with per-segment metadata (Figure 2);
- the reader/writer lock protocol against each segment's server,
  including coherence-model validation and the adaptive
  polling/notification protocol;
- diff collection at write-release and diff application at acquire;
- pointer swizzling between local addresses and MIPs, across segments.

Reader locks are local once the cached copy is "recent enough" for the
segment's coherence model; writer locks are arbitrated by the server,
which serializes writers and hands the new version number back at release.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Union

from repro.arch import Architecture
from repro.client.apply import ApplyStats, apply_update
from repro.client.collect import CollectTimers, collect_write_diff
from repro.client.nodiff import NoDiffController
from repro.coherence import AdaptivePoller, CoherencePolicy, full
from repro.client.routing import Resolver, StaticResolver
from repro.errors import (
    BlockError,
    LockError,
    MIPError,
    SegmentError,
    ServerError,
    TransportError,
    WrongServerError,
)
from repro.memory import (
    Accessor,
    AccessorContext,
    AddressSpace,
    BlockInfo,
    Heap,
    SegmentHeap,
    make_accessor,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer
from repro.transport.base import Channel
from repro.types import TypeDescriptor, TypeRegistry, descriptor_at, flat_layout
from repro.util.clock import Clock, VirtualClock, WallClock
from repro.wire import TranslationContext, format_mip, parse_mip
from repro.wire.messages import (
    LOCK_READ,
    LOCK_WRITE,
    DeleteSegmentReply,
    DeleteSegmentRequest,
    ErrorReply,
    FetchReply,
    FetchRequest,
    GetStatsReply,
    GetStatsRequest,
    LockAcquireReply,
    LockAcquireRequest,
    LockReleaseReply,
    LockReleaseRequest,
    Message,
    NotifyInvalidate,
    OpenSegmentReply,
    OpenSegmentRequest,
    RedirectReply,
    SubscribeReply,
    SubscribeRequest,
    decode_message,
    encode_message,
)


@dataclass
class ClientOptions:
    """Feature switches; the ablation benchmarks flip these individually."""

    enable_nodiff: bool = True
    enable_splicing: bool = True
    enable_isomorphic: bool = True  # coalesced translation layouts
    enable_prediction: bool = True  # last-block searches
    enable_locality_layout: bool = True
    enable_notifications: bool = True
    #: send a mostly-modified block whole instead of as many runs; None
    #: disables (the paper's per-block no-diff adaptation)
    block_full_threshold: float = 0.75
    lock_retry_interval: float = 0.001
    lock_max_retries: int = 100000
    #: WrongServer redirects a single operation may chase before giving
    #: up (a migration moves a segment once; chains only appear when it
    #: moves again mid-retry)
    redirect_max_follows: int = 4
    #: when a server becomes unreachable, drop the cached binding and ask
    #: the resolver again — if the cluster failed the segment over to a
    #: promoted backup, the re-resolved server differs and the operation
    #: is retried there transparently
    failover_reresolve: bool = True


@dataclass
class ClientStats:
    """Aggregated instrumentation across all segments."""

    collect: CollectTimers = field(default_factory=CollectTimers)
    apply: ApplyStats = field(default_factory=ApplyStats)
    updates_applied: int = 0
    diffs_sent: int = 0
    validations_skipped: int = 0
    validations_sent: int = 0
    lock_denials_seen: int = 0
    twins_created: int = 0
    redirects_followed: int = 0
    failovers_followed: int = 0


class Segment:
    """Client-side state for one cached segment (a segment-table entry)."""

    def __init__(self, name: str, heap: SegmentHeap, channel: Channel,
                 can_push: bool, metrics: Optional[MetricsRegistry] = None):
        self.name = name
        self.heap = heap
        self.registry = TypeRegistry()
        self.channel = channel  # the cached connection to the server
        self.version = 0
        self.has_data = False
        self.policy: CoherencePolicy = full()
        self.poller = AdaptivePoller(can_push, metrics=metrics)
        self.nodiff = NoDiffController()
        self.lock_mode: Optional[int] = None
        #: write-lease grant from the server: duration and the local clock
        #: instant it was granted (renewed implicitly by any request we
        #: send for this segment)
        self.lease_duration = 0.0
        self.lease_acquired_at: Optional[float] = None
        self.session_diffed = True
        self.created: List[BlockInfo] = []
        self.freed: List[int] = []
        self.transaction = None  # TransactionState when a tx is open
        #: type serials the server has already seen (via us or via updates)
        self.server_known_types: Set[int] = set()

    def __repr__(self):
        return f"Segment({self.name!r} v{self.version})"


def _locked(method):
    """Serialize one public API call against the client's metadata.

    The client is designed for one application thread per client object
    (as the paper's per-process library is); this lock makes individual
    calls atomic so auxiliary threads (notification handlers, monitors)
    cannot observe torn metadata.  It is *not* held across critical
    sections — lock/unlock pairing remains the application's job.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._api_lock:
            return method(self, *args, **kwargs)

    return wrapper


class InterWeaveClient:
    """One client process: its memory, cached segments, and server links.

    ``connector(server_name, client_id)`` opens a channel to the named
    server; an :class:`~repro.transport.InProcHub`\'s ``connect`` method is
    the usual value.  ``resolver`` decides which server a segment name
    routes to — by default a :class:`~repro.client.routing.StaticResolver`,
    which keeps the paper's rule that the server is the first path
    component of the segment's URL (``"host/name"`` is served by
    ``"host"``); a :class:`~repro.cluster.DirectoryResolver` routes
    through a cluster's segment directory instead.  Either way, a
    WrongServer redirect updates the resolver's binding and the request
    is retried at the origin the redirect named.
    """

    def __init__(self, client_id: str, arch: Architecture,
                 connector: Callable[[str, str], Channel],
                 clock: Optional[Clock] = None,
                 options: Optional[ClientOptions] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 resolver: Optional[Resolver] = None):
        self.client_id = client_id
        self.arch = arch
        self.connector = connector
        self.resolver = resolver or StaticResolver()
        self.clock = clock or WallClock()
        self.options = options or ClientOptions()
        self.stats = ClientStats()
        self.metrics = metrics or get_registry()
        #: structured tracing over the client's clock (deterministic under
        #: VirtualClock); disabled tracers cost one attribute check per span
        self.tracer = tracer or Tracer(clock=self.clock, capacity=512)
        self._m_twins = self.metrics.counter(
            "client.twins_created", "pristine page copies made on write faults")
        self._m_updates_applied = self.metrics.counter(
            "client.updates_applied", "server update diffs applied to the cache")
        self._m_diffs_sent = self.metrics.counter(
            "client.diffs_sent", "write diffs shipped at release")
        self._m_validations_sent = self.metrics.counter(
            "client.validations_sent", "read validations that hit the server")
        self._m_validations_skipped = self.metrics.counter(
            "client.validations_skipped", "read acquires satisfied locally")
        self._m_lock_denials = self.metrics.counter(
            "client.lock_denials_seen", "write lock denials observed")
        self._m_redirects = self.metrics.counter(
            "client.redirects_followed",
            "WrongServer redirects chased to a new origin")
        self._m_failovers = self.metrics.counter(
            "client.failovers_followed",
            "unreachable-server operations retried at a re-resolved origin")
        self._api_lock = threading.RLock()
        self.memory = AddressSpace(metrics=self.metrics)
        self.memory.fault_handler = self._on_write_fault
        self.heap_root = Heap(self.memory)
        self.segments: Dict[str, Segment] = {}
        self._channels: Dict[str, Channel] = {}
        self.accessor_context = AccessorContext(self.memory, arch)
        self.tctx = TranslationContext(
            self.memory, arch,
            pointer_to_mip=self._pointer_to_mip,
            mip_to_pointer=self._mip_to_pointer,
            metrics=self.metrics)

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------

    @staticmethod
    def server_of(segment_name: str, default: Optional[str] = None) -> str:
        """Static URL-prefix routing (no instance state consulted).

        ``default`` routes bare names (no '/') to a fixed server; without
        it they raise, as malformed URLs always have.  Instances route
        through ``self.resolver`` instead — this stays for callers that
        need the parse rule by itself.
        """
        return StaticResolver(default_server=default).resolve(segment_name)

    def _channel_for(self, segment_name: str) -> Channel:
        server = self.resolver.resolve(segment_name)
        channel = self._channels.get(server)
        if channel is None:
            channel = self.connector(server, self.client_id)
            if channel.can_push:
                channel.set_notification_handler(self._on_notification)
            channel.reconnect_listener = functools.partial(
                self._on_channel_reconnected, server)
            self._channels[server] = channel
        return channel

    def _on_channel_reconnected(self, server: str) -> None:
        """A channel re-established a lost connection: notifications may
        have been missed and the server may have forgotten subscriptions,
        so every segment served over it falls back to polling."""
        for name, segment in self.segments.items():
            try:
                routed = self.resolver.resolve(name)
            except SegmentError:
                continue
            if routed == server:
                segment.poller.on_disconnect()

    @_locked
    def open_segment(self, name: str, create: bool = True) -> Segment:
        """Open (or create) a segment; returns the opaque handle.

        The copy is reserved but contains no data until the first lock.
        """
        segment = self.segments.get(name)
        if segment is not None:
            return segment
        reply = self._rpc_named(name, OpenSegmentRequest(name, create,
                                                         self.client_id))
        if not isinstance(reply, OpenSegmentReply):
            raise ServerError(f"unexpected reply {type(reply).__name__}")
        channel = self._channel_for(name)
        heap = SegmentHeap(name, self.heap_root, self.arch)
        segment = Segment(name, heap, channel, channel.can_push,
                          metrics=self.metrics)
        self.segments[name] = segment
        return segment

    @_locked
    def close_segment(self, segment: Segment) -> None:
        """Discard the cached copy: unmap its memory and forget its state.

        The server copy is untouched; reopening the segment starts a fresh
        cache.  The segment must not be locked, and no accessor into it may
        be used afterwards (as with any unmapping).
        """
        if segment.lock_mode is not None:
            raise LockError(f"segment {segment.name!r} is locked")
        if self.segments.get(segment.name) is not segment:
            raise SegmentError(f"segment {segment.name!r} is not open here")
        for subsegment in segment.heap.subsegments:
            self.heap_root._unregister(subsegment)
            self.memory.unmap_region(subsegment.base, subsegment.num_pages)
        del self.segments[segment.name]

    @_locked
    def delete_segment(self, name: str) -> bool:
        """Destroy the segment at its server (administrative operation).

        Returns True if the server held the segment.  The local cache, if
        any, is closed first.  Other clients' caches become orphaned: their
        next validation fails with a server error.
        """
        segment = self.segments.get(name)
        if segment is not None:
            self.close_segment(segment)
        reply = self._rpc_named(name, DeleteSegmentRequest(name, self.client_id))
        if not isinstance(reply, DeleteSegmentReply):
            raise ServerError(f"unexpected reply {type(reply).__name__}")
        return reply.deleted

    @_locked
    def server_stats(self, server: str) -> dict:
        """Fetch a live stats snapshot from a server (see ``repro.obs``).

        ``server`` is the server part of a segment URL (everything before
        the first '/').  Returns the decoded JSON payload: a ``server``
        section (name and segment table) and a ``metrics`` section (the
        server's metrics-registry snapshot).  Purely observational.
        """
        channel = self._channels.get(server)
        if channel is None:
            channel = self._channel_for(f"{server}/stats")
        reply = self._rpc(channel, GetStatsRequest(self.client_id))
        if not isinstance(reply, GetStatsReply):
            raise ServerError(f"unexpected reply {type(reply).__name__}")
        return reply.to_dict()

    @_locked
    def session_state(self) -> dict:
        """Introspect this client's sessions: channel health and segment
        protocol state.

        Purely observational (no server round trips).  ``channels`` maps
        server name to the transport's :meth:`~repro.transport.Channel.health`
        snapshot — for TCP channels that includes broken/reconnect/retry
        state.  ``segments`` maps segment name to its cached version,
        lock mode, adaptive-poller state, and write-lease status
        (``lease_remaining`` is computed against this client's clock and
        is conservative: the server renews the lease on every request the
        writer sends).
        """
        now = self.clock.now()
        segments = {}
        for name, segment in self.segments.items():
            lease_remaining = None
            if segment.lock_mode == LOCK_WRITE and segment.lease_acquired_at is not None:
                lease_remaining = max(
                    0.0, segment.lease_duration - (now - segment.lease_acquired_at))
            segments[name] = {
                "version": segment.version,
                "has_data": segment.has_data,
                "lock_mode": segment.lock_mode,
                "subscribed": segment.poller.subscribed,
                "invalidated": segment.poller.invalidated,
                "lease_remaining": lease_remaining,
            }
        return {
            "client_id": self.client_id,
            "channels": {server: channel.health()
                         for server, channel in self._channels.items()},
            "segments": segments,
        }

    @_locked
    def close(self) -> None:
        """Release every cached segment and close every channel."""
        for segment in list(self.segments.values()):
            if segment.lock_mode is not None:
                raise LockError(
                    f"segment {segment.name!r} is still locked; release it first")
        for segment in list(self.segments.values()):
            self.close_segment(segment)
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()
        self.resolver.close()

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    @_locked
    def malloc(self, segment: Segment, descriptor: TypeDescriptor,
               name: Optional[str] = None) -> Accessor:
        """Allocate a typed block in the segment (requires the write lock)."""
        self._require_write(segment, "IW_malloc")
        type_serial = segment.registry.register(descriptor)
        block = segment.heap.allocate(descriptor, type_serial, name=name)
        size = descriptor.local_size(self.arch)
        if size:
            self.memory.store(block.address, bytes(size))
        segment.created.append(block)
        return make_accessor(self.accessor_context, descriptor, block.address)

    @_locked
    def free(self, segment: Segment, target: Union[Accessor, BlockInfo, int]) -> None:
        """Free a block (requires the write lock)."""
        self._require_write(segment, "IW_free")
        if isinstance(target, Accessor):
            block = segment.heap.block_spanning(target.address)
            if block is None or block.address != target.address:
                raise BlockError("accessor does not reference a block start")
        elif isinstance(target, BlockInfo):
            block = target
        else:
            block = segment.heap.block_by_serial(target)
        if block in segment.created:
            segment.heap.free(block)
            segment.created.remove(block)  # never reached the server
        elif segment.transaction is not None:
            # inside a transaction: hide the block, free only at commit
            from repro.client import transactions

            transactions.defer_free(self, segment, block)
        else:
            segment.heap.free(block)
            segment.freed.append(block.serial)

    def accessor_for(self, segment: Segment,
                     block: Union[BlockInfo, int, str]) -> Accessor:
        """An accessor for an existing block, by info, serial, or name."""
        if isinstance(block, int):
            block = segment.heap.block_by_serial(block)
        elif isinstance(block, str):
            block = segment.heap.block_by_name(block)
        return make_accessor(self.accessor_context, block.descriptor, block.address)

    # ------------------------------------------------------------------
    # coherence configuration
    # ------------------------------------------------------------------

    def set_coherence(self, segment: Segment, policy: CoherencePolicy) -> None:
        """Change the segment's coherence model (dynamic, per the paper)."""
        segment.policy = policy

    # ------------------------------------------------------------------
    # reader/writer locks
    # ------------------------------------------------------------------

    @_locked
    def rl_acquire(self, segment: Segment) -> None:
        """Acquire a read lock: validate the cached copy, update if stale."""
        if segment.lock_mode is not None:
            raise LockError(f"segment {segment.name!r} is already locked")
        self._validate(segment)
        segment.lock_mode = LOCK_READ

    @_locked
    def rl_release(self, segment: Segment) -> None:
        if segment.lock_mode != LOCK_READ:
            raise LockError(f"segment {segment.name!r} holds no read lock")
        segment.lock_mode = None

    @_locked
    def wl_acquire(self, segment: Segment) -> None:
        """Acquire the (server-arbitrated, exclusive) write lock."""
        if segment.lock_mode is not None:
            raise LockError(f"segment {segment.name!r} is already locked")
        with self.tracer.span("client.wl_acquire", segment=segment.name) as span:
            request = LockAcquireRequest(
                segment.name, LOCK_WRITE, self.client_id, segment.version,
                segment.policy.kind, segment.policy.param, self.clock.now())
            retries = 0
            while True:
                reply = self._rpc_segment(segment, request)
                if not isinstance(reply, LockAcquireReply):
                    raise ServerError(f"unexpected reply {type(reply).__name__}")
                if reply.granted:
                    break
                self.stats.lock_denials_seen += 1
                self._m_lock_denials.inc()
                retries += 1
                if retries > self.options.lock_max_retries:
                    raise LockError(f"write lock on {segment.name!r} unavailable")
                self._backoff()
            span.set_attr("retries", retries)
            span.set_attr("updated", reply.diff is not None)
            segment.lease_duration = reply.lease_remaining
            segment.lease_acquired_at = self.clock.now()
            if reply.diff is not None:
                self._apply(segment, reply.diff)
            segment.poller.on_validated(reply.version, reply.diff is not None,
                                        self.clock.now())
            self._begin_write_session(segment)
            segment.lock_mode = LOCK_WRITE

    @_locked
    def wl_release(self, segment: Segment) -> None:
        """Release the write lock, shipping the collected diff."""
        if segment.lock_mode != LOCK_WRITE:
            raise LockError(f"segment {segment.name!r} holds no write lock")
        with self.tracer.span("client.wl_release", segment=segment.name) as span:
            self._wl_release_traced(segment, span)

    def _wl_release_traced(self, segment: Segment, span) -> None:
        diff, modified_units = self._collect(segment)
        payload = diff if (diff.block_diffs or diff.new_types) else None
        span.set_attr("payload_bytes",
                      0 if payload is None else payload.payload_bytes())
        # the write session ends only once the server answered: if the
        # RPC dies (origin crash, failover blackout) the pagemaps keep
        # their dirty marks, so a retried release re-collects the same
        # modifications instead of shipping an empty diff and silently
        # dropping the committed section
        reply = self._rpc_segment(segment, LockReleaseRequest(
            segment.name, LOCK_WRITE, self.client_id, payload))
        self._end_write_session(segment)
        if not isinstance(reply, LockReleaseReply):
            raise ServerError(f"unexpected reply {type(reply).__name__}")
        if payload is not None:
            self.stats.diffs_sent += 1
            self._m_diffs_sent.inc()
            segment.version = reply.version
            segment.has_data = True
            segment.server_known_types.update(serial for serial, _ in diff.new_types)
            self._stamp_written_blocks(segment, diff, reply.version)
        total_units = self._total_units(segment)
        fraction = modified_units / total_units if total_units else 0.0
        segment.nodiff.on_release(fraction, segment.session_diffed)
        segment.poller.on_local_write(reply.version, self.clock.now())
        segment.created = []
        segment.freed = []
        segment.lock_mode = None
        segment.lease_duration = 0.0
        segment.lease_acquired_at = None

    # ------------------------------------------------------------------
    # transactions (the paper's future-work extension)
    # ------------------------------------------------------------------

    @_locked
    def tx_begin(self, segment: Segment) -> None:
        """Open a transactional write critical section (abortable)."""
        from repro.client import transactions

        transactions.begin(self, segment)

    @_locked
    def tx_commit(self, segment: Segment) -> None:
        """Commit: ship the diff exactly like a normal write release."""
        from repro.client import transactions

        if segment.transaction is None:
            raise LockError(f"segment {segment.name!r} has no open transaction")
        transactions.commit(self, segment)

    @_locked
    def tx_abort(self, segment: Segment) -> None:
        """Abort: roll the cached copy back and release the lock."""
        from repro.client import transactions

        transactions.abort(self, segment)

    # ------------------------------------------------------------------
    # pointer swizzling (public bootstrap API)
    # ------------------------------------------------------------------

    @_locked
    def ptr_to_mip(self, target: Union[Accessor, int]) -> str:
        """Create a MIP naming the data an accessor (or address) refers to."""
        address = target.address if isinstance(target, Accessor) else target
        return self._pointer_to_mip(address)

    @_locked
    def mip_to_ptr(self, text: str) -> Accessor:
        """Resolve a MIP to a typed accessor, caching the segment if needed."""
        mip = parse_mip(text)
        segment = self._ensure_cached(mip.segment)
        block = self._block_of(segment, mip.block)
        descriptor = descriptor_at(block.descriptor, mip.offset)
        if mip.offset == 0:
            address = block.address
        else:
            layout = flat_layout(block.descriptor, self.arch,
                                 self.options.enable_isomorphic)
            _, _, local = layout.prim_to_local(mip.offset)
            address = block.address + local
        return make_accessor(self.accessor_context, descriptor, address)

    # ------------------------------------------------------------------
    # internals: validation and updates
    # ------------------------------------------------------------------

    def _validate(self, segment: Segment) -> None:
        from repro.wire.messages import COHERENCE_TEMPORAL

        temporal_bound = (segment.policy.param
                          if segment.policy.kind == COHERENCE_TEMPORAL else None)
        if not segment.poller.must_contact_server(
                temporal_bound=temporal_bound, now=self.clock.now()):
            self.stats.validations_skipped += 1
            self._m_validations_skipped.inc()
            return
        request = LockAcquireRequest(
            segment.name, LOCK_READ, self.client_id, segment.version,
            segment.policy.kind, segment.policy.param, self.clock.now())
        reply = self._rpc_segment(segment, request)
        if not isinstance(reply, LockAcquireReply):
            raise ServerError(f"unexpected reply {type(reply).__name__}")
        self.stats.validations_sent += 1
        self._m_validations_sent.inc()
        if reply.diff is not None:
            self._apply(segment, reply.diff)
        segment.poller.on_validated(reply.version, reply.diff is not None,
                                    self.clock.now())
        if self.options.enable_notifications and segment.poller.wants_subscription():
            sub = self._rpc_segment(segment, SubscribeRequest(
                segment.name, self.client_id, True))
            if isinstance(sub, SubscribeReply) and sub.enabled:
                segment.poller.on_subscribed()
        elif segment.poller.wants_unsubscription():
            # writes are outpacing reads: pushes cost more than they save
            self._rpc_segment(segment, SubscribeRequest(
                segment.name, self.client_id, False))
            segment.poller.on_unsubscribed()

    def _apply(self, segment: Segment, diff) -> None:
        with self.tracer.span("client.apply_update", segment=segment.name,
                              to_version=diff.to_version):
            apply_update(self.tctx, segment.heap, segment.registry, diff,
                         first_cache=not segment.has_data,
                         stats=self.stats.apply,
                         use_prediction=self.options.enable_prediction,
                         locality_layout=self.options.enable_locality_layout,
                         coalesce_layouts=self.options.enable_isomorphic)
        segment.server_known_types.update(serial for serial, _ in diff.new_types)
        segment.version = diff.to_version
        segment.has_data = True
        self.stats.updates_applied += 1
        self._m_updates_applied.inc()

    def _collect(self, segment: Segment):
        unknown = [serial for serial, _ in segment.registry.items()
                   if serial not in segment.server_known_types]
        return collect_write_diff(
            self.tctx, segment.heap, segment.version,
            segment.created, segment.freed, unknown,
            use_diffing=segment.session_diffed,
            splice=self.options.enable_splicing,
            coalesce_layouts=self.options.enable_isomorphic,
            timers=self.stats.collect,
            registry=segment.registry,
            block_full_threshold=self.options.block_full_threshold,
            metrics=self.metrics)

    def _stamp_written_blocks(self, segment: Segment, diff, version: int) -> None:
        for block_diff in diff.block_diffs:
            if block_diff.freed:
                continue
            try:
                segment.heap.block_by_serial(block_diff.serial).version = version
            except BlockError:
                pass

    # ------------------------------------------------------------------
    # internals: write sessions and fault handling
    # ------------------------------------------------------------------

    def _begin_write_session(self, segment: Segment) -> None:
        segment.created = []
        segment.freed = []
        segment.nodiff.enabled = self.options.enable_nodiff
        segment.session_diffed = segment.nodiff.use_diffing_next()
        if segment.session_diffed:
            for subsegment in segment.heap.subsegments:
                subsegment.pagemap.clear()
                self.memory.protect_range(subsegment.base, subsegment.size)

    def _end_write_session(self, segment: Segment) -> None:
        for subsegment in segment.heap.subsegments:
            subsegment.pagemap.clear()
            self.memory.unprotect_range(subsegment.base, subsegment.size)

    def _on_write_fault(self, space: AddressSpace, page_number: int) -> bool:
        """The library's SIGSEGV handler: twin the page, re-enable writes."""
        address = page_number * space.page_size
        subsegment = self.heap_root.find_subsegment(address)
        if subsegment is None:
            return False
        segment = self.segments.get(subsegment.segment_heap.name)
        if segment is None or segment.lock_mode != LOCK_WRITE:
            return False  # writing shared data without a write lock
        page_index = subsegment.page_index(address)
        if page_index not in subsegment.pagemap:
            subsegment.pagemap[page_index] = space.snapshot_page(page_number)
            self.stats.twins_created += 1
            self._m_twins.inc()
        space.unprotect_page(page_number)
        return True

    # ------------------------------------------------------------------
    # internals: swizzling hooks (used during translation)
    # ------------------------------------------------------------------

    def _pointer_to_mip(self, address: int) -> str:
        subsegment = self.heap_root.find_subsegment(address)
        if subsegment is None:
            raise MIPError(f"address {address:#x} is not in any shared segment")
        heap = subsegment.segment_heap
        block = heap.block_spanning(address)
        if block is None:
            raise MIPError(f"address {address:#x} does not fall in a block")
        layout = flat_layout(block.descriptor, self.arch,
                             self.options.enable_isomorphic)
        unit = layout.local_to_prim(address - block.address)
        if unit is None:
            raise MIPError(f"address {address:#x} points into alignment padding")
        return format_mip(heap.name, block.serial, unit[0])

    def _mip_to_pointer(self, text: str) -> int:
        mip = parse_mip(text)
        segment = self._ensure_cached(mip.segment)
        block = self._block_of(segment, mip.block)
        if mip.offset == 0:
            return block.address
        layout = flat_layout(block.descriptor, self.arch,
                             self.options.enable_isomorphic)
        _, _, local = layout.prim_to_local(mip.offset)
        return block.address + local

    def _ensure_cached(self, segment_name: str) -> Segment:
        segment = self.segments.get(segment_name)
        if segment is None:
            segment = self.open_segment(segment_name, create=False)
        if not segment.has_data and not segment.heap.blk_number_tree:
            reply = self._rpc_segment(segment, FetchRequest(
                segment.name, self.client_id, 0, meta_only=True))
            if not isinstance(reply, FetchReply):
                raise ServerError(f"unexpected reply {type(reply).__name__}")
            if reply.diff is not None:
                # structure only: reserves space, leaves version at 0 so the
                # first lock still pulls real data
                apply_update(self.tctx, segment.heap, segment.registry,
                             reply.diff, first_cache=True,
                             stats=self.stats.apply,
                             use_prediction=self.options.enable_prediction,
                             locality_layout=self.options.enable_locality_layout,
                             coalesce_layouts=self.options.enable_isomorphic)
                segment.server_known_types.update(
                    serial for serial, _ in reply.diff.new_types)
        return segment

    @staticmethod
    def _block_of(segment: Segment, block_ref: Union[int, str]) -> BlockInfo:
        if isinstance(block_ref, int):
            return segment.heap.block_by_serial(block_ref)
        return segment.heap.block_by_name(block_ref)

    # ------------------------------------------------------------------
    # internals: transport
    # ------------------------------------------------------------------

    def _rpc(self, channel: Channel, request: Message) -> Message:
        reply = decode_message(channel.request(encode_message(request)))
        if isinstance(reply, ErrorReply):
            raise ServerError(reply.message)
        if isinstance(reply, RedirectReply):
            raise WrongServerError(reply.segment, reply.origin,
                                   reply.generation)
        return reply

    def _failed_over(self, name: str) -> bool:
        """A server became unreachable: drop the cached binding and ask
        the resolver whether the segment now lives somewhere else.

        Returns True only when the re-resolved server *differs* — the
        cluster promoted a backup (or rebound the segment) and a retry
        there can succeed.  When the name still resolves to the dead
        server there is nothing to fail over to, and the transport error
        propagates (retry policies below this layer already handled
        transient blips).
        """
        if not self.options.failover_reresolve:
            return False
        try:
            before = self.resolver.resolve(name)
        except SegmentError:
            return False
        self.resolver.invalidate(name)
        try:
            after = self.resolver.resolve(name)
        except (SegmentError, TransportError):
            return False
        if after == before:
            return False
        self.stats.failovers_followed += 1
        self._m_failovers.inc()
        return True

    def _rpc_named(self, name: str, request: Message) -> Message:
        """An RPC routed by segment name, chasing WrongServer redirects:
        each redirect teaches the resolver the new binding, and the
        request is re-sent over the channel the name now resolves to.
        An unreachable server additionally triggers one failover
        re-resolve (see :meth:`_failed_over`)."""
        last: Optional[WrongServerError] = None
        failed_over = False
        for _ in range(max(1, self.options.redirect_max_follows)):
            try:
                return self._rpc(self._channel_for(name), request)
            except WrongServerError as exc:
                last = exc
                self.stats.redirects_followed += 1
                self._m_redirects.inc()
                self.resolver.on_redirect(exc.segment, exc.origin,
                                          exc.generation)
            except TransportError:
                if failed_over or not self._failed_over(name):
                    raise
                failed_over = True
        raise last

    def _rpc_segment(self, segment: Segment, request: Message) -> Message:
        """An RPC over a cached segment's channel, chasing redirects.

        On a redirect the segment's cached channel is rebound to the new
        origin, and the poller falls back to polling — the new origin
        has no subscription for us, so trusting push freshness across a
        migration would serve stale reads forever.  An unreachable
        server gets the same treatment after a successful failover
        re-resolve: rebind the channel and drop push trust.
        """
        last: Optional[WrongServerError] = None
        failed_over = False
        for _ in range(1 + max(0, self.options.redirect_max_follows)):
            try:
                return self._rpc(segment.channel, request)
            except WrongServerError as exc:
                last = exc
                self.stats.redirects_followed += 1
                self._m_redirects.inc()
                self.resolver.on_redirect(exc.segment, exc.origin,
                                          exc.generation)
            except TransportError:
                if failed_over or not self._failed_over(segment.name):
                    raise
                failed_over = True
            segment.channel = self._channel_for(segment.name)
            segment.poller.on_disconnect()
        raise last

    def _on_notification(self, data: bytes) -> None:
        # runs on whatever thread the transport delivers pushes on; the
        # poller update below is the only state it touches
        message = decode_message(data)
        if isinstance(message, NotifyInvalidate):
            segment = self.segments.get(message.segment)
            if segment is not None:
                segment.poller.on_notify(message.version)

    def _backoff(self) -> None:
        if isinstance(self.clock, VirtualClock):
            self.clock.advance(self.options.lock_retry_interval)
        else:
            time.sleep(self.options.lock_retry_interval)

    def _require_write(self, segment: Segment, operation: str) -> None:
        if segment.lock_mode != LOCK_WRITE:
            raise LockError(f"{operation} requires the write lock on {segment.name!r}")

    @staticmethod
    def _total_units(segment: Segment) -> int:
        return sum(block.descriptor.prim_count for block in segment.heap.blocks())
