"""Client diff application: wire format -> local format.

The inverse of diff collection: given a wire-format update from the
server, the library uses type descriptors to identify the local-format
bytes that correspond to each primitive-data change and rewrites them,
unswizzling MIPs back into local machine addresses.

Application runs in two passes.  The first materializes structure —
freeing tombstoned blocks and allocating newly created ones — so that the
second pass, which writes data, can unswizzle MIPs that point at blocks
appearing later in the same diff (a linked-list head updated to point at
a node created in the same critical section is the canonical case).

Two of the paper's optimizations live here:

- **locality layout**: when a segment is cached for the first time, new
  blocks are allocated grouped by the version in which they were last
  modified, so data written together sits together in memory;
- **last-block prediction**: mapping a diff's serial numbers to blocks
  normally costs a ``blk_number_tree`` search; because blocks modified
  together tend to be modified together again — and because the locality
  layout placed them consecutively — the next diffed block is predicted
  to be the next block in memory, and the tree is searched only on a miss.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import BlockError, TypeDescriptorError
from repro.memory.heap import BlockInfo, SegmentHeap
from repro.types import TypeRegistry, flat_layout
from repro.wire import SegmentDiff, TranslationContext, apply_range
from repro.errors import WireFormatError


class ApplyStats:
    """Prediction effectiveness counters (for the ablation bench)."""

    __slots__ = ("prediction_hits", "prediction_misses")

    def __init__(self):
        self.prediction_hits = 0
        self.prediction_misses = 0


def apply_update(tctx: TranslationContext, heap: SegmentHeap,
                 registry: TypeRegistry, diff: SegmentDiff,
                 first_cache: bool,
                 stats: Optional[ApplyStats] = None,
                 use_prediction: bool = True,
                 locality_layout: bool = True,
                 coalesce_layouts: bool = True) -> None:
    """Apply ``diff`` to the cached copy held in ``heap``."""
    stats = stats or ApplyStats()
    for serial, encoded in diff.new_types:
        registry.register_with_serial(serial, encoded)

    # -- pass 0: a full transfer replaces the cache ------------------------------
    if diff.is_full and not first_cache:
        # the server compacted past our version: anything it did not send
        # no longer exists (frees we never heard about)
        mentioned = {bd.serial for bd in diff.block_diffs if not bd.freed}
        for block in list(heap.blocks()):
            if block.serial not in mentioned:
                heap.free(block)

    # -- pass 1: structure -------------------------------------------------------
    for block_diff in diff.block_diffs:
        if block_diff.freed:
            try:
                block = heap.block_by_serial(block_diff.serial)
            except BlockError:
                continue  # freed before we ever cached it
            heap.free(block)

    creations = [bd for bd in diff.block_diffs
                 if bd.is_new and bd.serial not in heap.blk_number_tree]
    if first_cache and locality_layout:
        # blocks modified in the same write critical section (same version)
        # are placed contiguously, in the hope they are accessed together
        creations.sort(key=lambda bd: (bd.version, bd.serial))
    for block_diff in creations:
        descriptor = registry.lookup(block_diff.type_serial)
        heap.allocate(descriptor, block_diff.type_serial, name=block_diff.name,
                      serial=block_diff.serial, version=block_diff.version)

    # -- pass 2: data ---------------------------------------------------------------
    predicted: Optional[BlockInfo] = None
    for block_diff in diff.block_diffs:
        if block_diff.freed:
            continue
        block = _resolve_block(heap, block_diff.serial, predicted, stats,
                               use_prediction)
        if block_diff.is_new:
            expected = registry.lookup(block_diff.type_serial)
            if block.descriptor != expected:
                raise TypeDescriptorError(
                    f"block {block.serial}: wire type does not match cached type")
        layout = flat_layout(block.descriptor, tctx.arch, coalesce_layouts)
        from repro.wire.translate import apply_runs

        if not apply_runs(tctx, layout, block.address, block_diff.runs):
            for run in block_diff.runs:
                end = apply_range(tctx, layout, block.address,
                                  run.prim_start, run.prim_count, run.data)
                if end != len(run.data):
                    raise WireFormatError(
                        f"block {block.serial}: {len(run.data) - end} "
                        "trailing bytes in run")
        block.version = max(block.version, block_diff.version)
        predicted = _next_block_in_memory(block)


def _resolve_block(heap: SegmentHeap, serial: int, predicted: Optional[BlockInfo],
                   stats: ApplyStats, use_prediction: bool) -> BlockInfo:
    """Serial -> block, trying the last-block prediction before the tree."""
    if use_prediction and predicted is not None and predicted.serial == serial:
        stats.prediction_hits += 1
        return predicted
    if use_prediction:
        stats.prediction_misses += 1
    return heap.block_by_serial(serial)


def _next_block_in_memory(block: BlockInfo) -> Optional[BlockInfo]:
    """The next consecutive block in the client's memory layout."""
    hit = block.subsegment.blk_addr_tree.successor(block.address)
    return hit[1] if hit is not None else None
