"""The C-flavoured InterWeave API.

The paper presents the client API as free functions (Figure 1)::

    h = IW_open_segment("host/list");
    head = IW_mip_to_ptr("host/list#head");
    IW_wl_acquire(h);
    p = IW_malloc(h, IW_node_t);
    ...
    IW_wl_release(h);

This module reproduces that surface for a chosen "current process".  It is
a thin veneer over :class:`~repro.client.client.InterWeaveClient` — Python
applications are expected to use the object API directly; the veneer
exists so the paper's examples transcribe one-to-one.

Because the C API is implicitly scoped to the calling process, the veneer
must be bound to a client first with :func:`IW_set_process`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.client.client import InterWeaveClient, Segment
from repro.errors import InterWeaveError
from repro.memory import Accessor, BlockInfo
from repro.types import TypeDescriptor

_current: Optional[InterWeaveClient] = None


def IW_set_process(client: InterWeaveClient) -> None:
    """Bind the veneer to a client (the "current process")."""
    global _current
    _current = client


def _process() -> InterWeaveClient:
    if _current is None:
        raise InterWeaveError("call IW_set_process(client) first")
    return _current


def IW_open_segment(name: str, create: bool = True) -> Segment:
    """Open (or create) a segment; returns an opaque handle."""
    return _process().open_segment(name, create)


def IW_malloc(handle: Segment, descriptor: TypeDescriptor,
              name: Optional[str] = None) -> Accessor:
    """Allocate a typed block inside a write critical section."""
    return _process().malloc(handle, descriptor, name=name)


def IW_free(handle: Segment, target: Union[Accessor, BlockInfo, int]) -> None:
    """Free a block inside a write critical section."""
    _process().free(handle, target)


def IW_rl_acquire(handle: Segment) -> None:
    """Acquire a read lock (validates the cached copy)."""
    _process().rl_acquire(handle)


def IW_rl_release(handle: Segment) -> None:
    """Release a read lock."""
    _process().rl_release(handle)


def IW_wl_acquire(handle: Segment) -> None:
    """Acquire the exclusive write lock."""
    _process().wl_acquire(handle)


def IW_wl_release(handle: Segment) -> None:
    """Release the write lock, shipping the collected diff."""
    _process().wl_release(handle)


def IW_mip_to_ptr(mip: str) -> Accessor:
    """Convert a machine-independent pointer to a local typed accessor."""
    return _process().mip_to_ptr(mip)


def IW_ptr_to_mip(target: Union[Accessor, int]) -> str:
    """Convert a local pointer (accessor or address) to a MIP string."""
    return _process().ptr_to_mip(target)


def IW_set_coherence(handle: Segment, policy) -> None:
    """Set the segment's relaxed coherence model (dynamic, per the paper)."""
    _process().set_coherence(handle, policy)


def IW_get_version(handle: Segment) -> int:
    """The version of the cached copy (0 before any data arrives)."""
    return handle.version


def IW_tx_begin(handle: Segment) -> None:
    """Open a transactional (abortable) write critical section."""
    _process().tx_begin(handle)


def IW_tx_commit(handle: Segment) -> None:
    """Commit the transaction (ships the diff, like IW_wl_release)."""
    _process().tx_commit(handle)


def IW_tx_abort(handle: Segment) -> None:
    """Abort the transaction: roll back every modification."""
    _process().tx_abort(handle)
