"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The paper's evaluation is built on counting protocol events — diff runs,
bytes on the wire, twin creations, cache hits — so the library routes all
such counts through a :class:`MetricsRegistry`.  Components resolve their
instruments once (at construction) and increment them on the hot path;
resolution is a locked dict lookup, an increment is a per-instrument lock
plus an integer add, cheap enough for per-message (not per-byte) events.

One process-wide default registry (:func:`get_registry`) exists so that a
server, its co-located clients, and the transports between them all land
in a single snapshot without any plumbing.  Tests that need isolation
either construct their own :class:`MetricsRegistry` or swap the default
with :func:`set_registry`.

Snapshots are deterministic: instruments are reported in sorted name
order, and the capture timestamp comes from the registry's
:class:`~repro.util.clock.Clock` (a ``VirtualClock`` makes two identical
histories produce byte-identical snapshots).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

from repro.util.clock import Clock, WallClock

#: Default histogram buckets (seconds): 1 us .. ~65 s in powers of four,
#: chosen to straddle both in-process round trips and WAN-scale latency.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3,
    0.256, 1.0, 4.0, 16.0, 65.0)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self):
        return f"Counter({self.name!r}={self._value})"


class DualCounter:
    """A per-instance tally that also feeds a process-wide aggregate.

    Several servers (or a server and a caching proxy) can share one
    process and one registry; experiments assert on a *specific*
    instance's counts, so those stay local, while every increment also
    lands in the registry counter that snapshots and ``GetStats``
    export.  Increments come from concurrent dispatch threads, so the
    local tally takes a lock too — experiments assert exact values.
    """

    __slots__ = ("local", "aggregate", "_lock")

    def __init__(self, aggregate: Counter):
        self.local = 0
        self.aggregate = aggregate
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.local += amount
        self.aggregate.inc(amount)


class Gauge:
    """A value that can move both ways (queue depths, modes, sizes)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self):
        return f"Gauge({self.name!r}={self._value})"


class Histogram:
    """Fixed-bucket distribution tracking (cumulative, Prometheus-style).

    ``buckets`` is an increasing sequence of upper bounds; an implicit
    +inf bucket catches everything beyond the last bound.  ``observe``
    records one sample; ``count``/``sum`` give the totals and
    ``bucket_counts`` the non-cumulative per-bucket tallies.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 help: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        return tuple(self._counts)

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def __repr__(self):
        return f"Histogram({self.name!r} n={self._count} sum={self._sum:g})"


class MetricsRegistry:
    """Named instruments, get-or-create, with deterministic snapshots."""

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or WallClock()
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    # -- instrument resolution ------------------------------------------------

    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}")
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram,
                                   lambda: Histogram(name, buckets, help))

    # -- snapshotting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as one JSON-ready dict, sorted by name."""
        counters, gauges, histograms = {}, {}, {}
        with self._lock:
            items = sorted(self._instruments.items())
        for name, instrument in items:
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[name] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": [list(pair) for pair in zip(
                        list(instrument.buckets) + ["+inf"],
                        instrument.bucket_counts)],
                }
        return {
            "captured_at": self.clock.now(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Zero every instrument (instruments themselves survive)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    def __len__(self):
        return len(self._instruments)

    def __bool__(self):
        # a registry with no instruments yet must not read as falsy, or the
        # common ``metrics or get_registry()`` default would discard it
        return True


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default; returns the previous one.

    Components resolve instruments at construction, so a swap affects
    objects created *afterwards* — swap first, then build the world.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
