"""repro.obs — metrics, tracing, and protocol introspection.

The measurement foundation for the reproduction: a process-wide
:class:`MetricsRegistry` of counters/gauges/histograms that every layer
of the stack reports into (MMU faults, twin creations, diff runs, RLE
bytes, swizzles, transport bytes and round trips, server protocol
handling, poller mode transitions), a deterministic :class:`Tracer`
built on the ``Clock`` abstraction, and export helpers for JSON
snapshots and human-readable tables.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and usage.
"""

from repro.obs.export import (
    registry_snapshot,
    render_table,
    snapshot_to_json,
    write_sidecar,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    DualCounter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracing import NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DualCounter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "get_registry",
    "registry_snapshot",
    "render_table",
    "set_registry",
    "snapshot_to_json",
    "write_sidecar",
]
