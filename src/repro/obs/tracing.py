"""Lightweight structured tracing: spans and events over a Clock.

A :class:`Tracer` records *spans* (named intervals with attributes, e.g.
one ``wl_release`` including its diff collection) and *events* (named
instants, e.g. a pushed invalidation).  Time comes from the library's
:class:`~repro.util.clock.Clock` abstraction, so traces taken under a
``VirtualClock`` are fully deterministic — identical histories produce
identical span ids, timestamps, and orderings, which lets tests assert on
whole traces.

Nesting is tracked per thread: a span started while another is open on
the same thread records it as its parent, giving call-tree shaped traces
without any context plumbing.  Finished records land in a bounded ring
buffer (oldest dropped first), so a long-lived client can keep a tracer
attached permanently at negligible cost.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.util.clock import Clock, WallClock


class Span:
    """One named interval; ``end`` stays None while the span is open."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 start: float, attrs: Dict[str, object]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self):
        return f"Span(#{self.span_id} {self.name!r} {self.start:g}..{self.end})"


class TraceEvent:
    """One named instant."""

    __slots__ = ("name", "timestamp", "span_id", "attrs")

    def __init__(self, name: str, timestamp: float, span_id: Optional[int],
                 attrs: Dict[str, object]):
        self.name = name
        self.timestamp = timestamp
        self.span_id = span_id  # enclosing span, if any
        self.attrs = attrs

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "timestamp": self.timestamp,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Records spans and events; one per client/server is typical."""

    def __init__(self, clock: Optional[Clock] = None, capacity: int = 4096,
                 enabled: bool = True):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.clock = clock or WallClock()
        self.enabled = enabled
        self.finished: "deque[Span]" = deque(maxlen=capacity)
        self.events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._next_id = 1
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- recording ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "spans", None)
        if stack is None:
            stack = self._stacks.spans = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span for the duration of the ``with`` block."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = stack[-1].span_id if stack else None
        record = Span(span_id, parent, name, self.clock.now(), attrs)
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record.end = self.clock.now()
            self.finished.append(record)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event (inside the current span, if any)."""
        if not self.enabled:
            return
        stack = self._stack()
        span_id = stack[-1].span_id if stack else None
        self.events.append(TraceEvent(name, self.clock.now(), span_id, attrs))

    # -- export ---------------------------------------------------------------

    def export(self) -> dict:
        """Finished spans and events as a JSON-ready dict."""
        return {
            "spans": [span.to_dict() for span in self.finished],
            "events": [event.to_dict() for event in self.events],
        }

    def clear(self) -> None:
        self.finished.clear()
        self.events.clear()


class _NullSpanType:
    """Stand-in yielded by disabled tracers; absorbs attribute writes."""

    __slots__ = ()
    span_id = None
    parent_id = None

    def set_attr(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpanType()


class NullTracer(Tracer):
    """A tracer that records nothing (for hot paths that want zero cost)."""

    def __init__(self):
        super().__init__(capacity=1, enabled=False)
