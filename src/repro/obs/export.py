"""Export paths for metrics snapshots: JSON and human-readable tables.

Two consumers exist today: the ``repro.tools.stats_main`` CLI (renders a
live server's :class:`GetStatsReply`) and the benchmark harness (writes a
``*.metrics.json`` sidecar next to each report so perf PRs can diff
protocol-event counts, not just wall times).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import MetricsRegistry


def snapshot_to_json(snapshot: dict, indent: Optional[int] = 2) -> str:
    """A snapshot (or any JSON-ready dict) as deterministic JSON text."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def write_sidecar(path: str, snapshot: dict) -> str:
    """Write a snapshot as a JSON sidecar file; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot_to_json(snapshot))
        handle.write("\n")
    return path


def registry_snapshot(registry: Optional[MetricsRegistry] = None) -> dict:
    """Snapshot ``registry`` (default: the process-wide one)."""
    if registry is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
    return registry.snapshot()


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_table(snapshot: dict) -> str:
    """A metrics snapshot as an aligned, human-readable table.

    Accepts either a bare registry snapshot or a server stats payload
    (a dict with ``server`` and ``metrics`` sections, as carried by
    ``GetStatsReply``).
    """
    lines = []
    server = snapshot.get("server")
    metrics = snapshot.get("metrics", snapshot)
    if server:
        lines.append(f"server       : {server.get('name', '?')}")
        segments = server.get("segments", {})
        lines.append(f"segments     : {len(segments)}")
        for name in sorted(segments):
            info = segments[name]
            lines.append(f"  {name:<24s} v{info.get('version', 0):<6d} "
                         f"{info.get('blocks', 0)} block(s)")
        lines.append("")
    captured = metrics.get("captured_at")
    if captured is not None:
        lines.append(f"captured at  : {captured:g}")
    counters = metrics.get("counters", {})
    if counters:
        lines.append("\ncounters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}s} {counters[name]:>12d}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("\ngauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}s} {_format_value(gauges[name]):>12s}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("\nhistograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            total = hist.get("sum", 0.0)
            mean = total / count if count else 0.0
            lines.append(f"  {name}: n={count} sum={total:g} mean={mean:g}")
            populated = [(bound, tally) for bound, tally in hist.get("buckets", [])
                         if tally]
            if populated:
                cells = " ".join(f"<={_format_value(bound)}:{tally}"
                                 for bound, tally in populated)
                lines.append(f"    {cells}")
    return "\n".join(lines)
