"""Flattened per-architecture layouts ("translation programs").

For translation and offset mapping the library does not walk the descriptor
tree field by field.  Instead, for each (type, architecture) pair it
flattens the tree once into a small list of :class:`LayoutRun`\\ s — groups
of identical primitives at regular local strides — and all hot operations
(diff collection, diff application, MIP swizzling) run over those runs.

Flattening with ``coalesce=True`` merges consecutive same-primitive fields
into a single run: this is exactly the paper's *isomorphic type
descriptors* optimization ("if a struct contains 10 consecutive integer
fields, the compiler generates a descriptor containing a 10-element integer
array instead").  ``coalesce=False`` keeps one run per field, which the
ablation benchmark uses to measure what the optimization buys.

A :class:`LayoutRun` describes ``repeat`` x ``unit_count`` primitive units:

- unit (i, j) — repetition ``i`` in [0, repeat), unit ``j`` in [0, unit_count)
- has machine-independent primitive offset ``prim_start + i*prim_stride + j``
- and local byte offset ``local_start + i*local_stride + j*unit_size``.

An array of records flattens into one run per (coalesced) field with
``repeat`` = the array count, so a megabyte-scale array is a handful of
runs no matter its length.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.arch import WIRE_SIZES, Architecture, PrimKind
from repro.errors import TypeDescriptorError
from repro.types.descriptor import (
    ArrayDescriptor,
    PointerDescriptor,
    PrimitiveDescriptor,
    RecordDescriptor,
    StringDescriptor,
    TypeDescriptor,
)

#: Wire size of a variable unit's length header (strings and MIPs are sent
#: as a 4-byte length followed by that many bytes).
VAR_LEN_HEADER = 4


class LayoutRun:
    """A strided group of identical primitive units (see module docstring)."""

    __slots__ = (
        "kind",
        "capacity",
        "prim_start",
        "local_start",
        "unit_count",
        "repeat",
        "prim_stride",
        "local_stride",
        "unit_size",
    )

    def __init__(self, kind, capacity, prim_start, local_start, unit_count, repeat,
                 prim_stride, local_stride, unit_size):
        self.kind: PrimKind = kind
        self.capacity: int = capacity  # string capacity; 0 for other kinds
        self.prim_start: int = prim_start
        self.local_start: int = local_start
        self.unit_count: int = unit_count
        self.repeat: int = repeat
        self.prim_stride: int = prim_stride
        self.local_stride: int = local_stride
        self.unit_size: int = unit_size

    @property
    def total_units(self) -> int:
        return self.unit_count * self.repeat

    @property
    def prim_end(self) -> int:
        """One past the largest primitive offset covered."""
        return self.prim_start + (self.repeat - 1) * self.prim_stride + self.unit_count

    def shifted(self, prim_delta: int, local_delta: int) -> "LayoutRun":
        return LayoutRun(
            self.kind, self.capacity,
            self.prim_start + prim_delta, self.local_start + local_delta,
            self.unit_count, self.repeat,
            self.prim_stride, self.local_stride, self.unit_size,
        )

    def unit_local_offset(self, i: int, j: int) -> int:
        return self.local_start + i * self.local_stride + j * self.unit_size

    def locate_prim(self, prim_offset: int) -> Optional[Tuple[int, int]]:
        """Return (i, j) if this run covers ``prim_offset``, else None."""
        delta = prim_offset - self.prim_start
        if delta < 0:
            return None
        i, j = divmod(delta, self.prim_stride)
        if i < self.repeat and j < self.unit_count:
            return (i, j)
        return None

    def __repr__(self):
        return (
            f"LayoutRun({self.kind.value}, prim={self.prim_start}+i*{self.prim_stride}+j, "
            f"local={self.local_start}+i*{self.local_stride}+j*{self.unit_size}, "
            f"c={self.unit_count}, r={self.repeat})"
        )


def _filler_strides(unit_count: int, unit_size: int) -> Tuple[int, int]:
    """Canonical (prim_stride, local_stride) for a repeat-1 run."""
    return unit_count, unit_count * unit_size


def _flatten(descriptor: TypeDescriptor, arch: Architecture, coalesce: bool) -> List[LayoutRun]:
    if isinstance(descriptor, PrimitiveDescriptor):
        size = arch.prim_size(descriptor.kind)
        prim_stride, local_stride = _filler_strides(1, size)
        return [LayoutRun(descriptor.kind, 0, 0, 0, 1, 1, prim_stride, local_stride, size)]

    if isinstance(descriptor, StringDescriptor):
        size = descriptor.capacity
        prim_stride, local_stride = _filler_strides(1, size)
        return [LayoutRun(PrimKind.STRING, size, 0, 0, 1, 1, prim_stride, local_stride, size)]

    if isinstance(descriptor, PointerDescriptor):
        size = arch.pointer_size
        prim_stride, local_stride = _filler_strides(1, size)
        return [LayoutRun(PrimKind.POINTER, 0, 0, 0, 1, 1, prim_stride, local_stride, size)]

    if isinstance(descriptor, RecordDescriptor):
        runs: List[LayoutRun] = []
        for field, local_offset, prim_offset in descriptor.iter_field_layout(arch):
            for run in _flatten(field.descriptor, arch, coalesce):
                runs.append(run.shifted(prim_offset, local_offset))
        return _coalesce(runs) if coalesce else runs

    if isinstance(descriptor, ArrayDescriptor):
        element_runs = _flatten(descriptor.element, arch, coalesce)
        count = descriptor.count
        element_prims = descriptor.element.prim_count
        element_stride = descriptor.element_stride(arch)
        runs = []
        for run in element_runs:
            wrapped = _wrap_array(run, count, element_prims, element_stride)
            if wrapped is not None:
                runs.append(wrapped)
            else:
                # Irregular inner repetition: replicate materially.
                for i in range(count):
                    runs.append(run.shifted(i * element_prims, i * element_stride))
        return _coalesce(runs) if coalesce else runs

    raise TypeDescriptorError(f"cannot flatten descriptor {descriptor!r}")


def _wrap_array(run: LayoutRun, count: int, element_prims: int,
                element_stride: int) -> Optional[LayoutRun]:
    """Lift a run of the element type to a run of the whole array, if regular."""
    if run.repeat == 1:
        lifted = LayoutRun(
            run.kind, run.capacity, run.prim_start, run.local_start,
            run.unit_count, count, element_prims, element_stride, run.unit_size,
        )
    elif (run.prim_stride * run.repeat == element_prims
          and run.local_stride * run.repeat == element_stride
          and run.prim_start + run.unit_count <= run.prim_stride):
        lifted = LayoutRun(
            run.kind, run.capacity, run.prim_start, run.local_start,
            run.unit_count, run.repeat * count,
            run.prim_stride, run.local_stride, run.unit_size,
        )
    else:
        return None
    # If the repetitions are contiguous continuations of each other, the run
    # is one dense stretch of units: collapse repeats into unit_count.
    if (lifted.prim_stride == lifted.unit_count
            and lifted.local_stride == lifted.unit_count * lifted.unit_size):
        stride_prim, stride_local = _filler_strides(
            lifted.unit_count * lifted.repeat, lifted.unit_size)
        return LayoutRun(
            lifted.kind, lifted.capacity, lifted.prim_start, lifted.local_start,
            lifted.unit_count * lifted.repeat, 1, stride_prim, stride_local,
            lifted.unit_size,
        )
    return lifted


def _coalesce(runs: List[LayoutRun]) -> List[LayoutRun]:
    """Merge adjacent repeat-1 runs of the same primitive with contiguous
    prim and local offsets (the isomorphic-descriptor optimization)."""
    merged: List[LayoutRun] = []
    for run in runs:
        if merged:
            prev = merged[-1]
            if (prev.repeat == 1 and run.repeat == 1
                    and prev.kind is run.kind
                    and prev.capacity == run.capacity
                    and run.prim_start == prev.prim_start + prev.unit_count
                    and run.local_start == prev.local_start + prev.unit_count * prev.unit_size):
                unit_count = prev.unit_count + run.unit_count
                prim_stride, local_stride = _filler_strides(unit_count, prev.unit_size)
                merged[-1] = LayoutRun(
                    prev.kind, prev.capacity, prev.prim_start, prev.local_start,
                    unit_count, 1, prim_stride, local_stride, prev.unit_size,
                )
                continue
        merged.append(run)
    return merged


class FlatLayout:
    """The flattened layout of one type on one architecture.

    Provides the mappings the paper's algorithms need:

    - primitive offset -> local byte offset (diff application, MIP -> ptr)
    - local byte offset -> primitive offset (diff collection, ptr -> MIP)
    - changed byte range -> covered primitive runs (diff collection)
    - per-instance wire stride (vectorized translation)
    """

    def __init__(self, descriptor: TypeDescriptor, arch: Architecture, coalesce: bool = True):
        self.descriptor = descriptor
        self.arch = arch
        self.coalesced = coalesce
        self.runs = sorted(
            _flatten(descriptor, arch, coalesce), key=lambda run: run.prim_start
        )
        self.prim_count = descriptor.prim_count
        self.local_size = descriptor.local_size(arch)
        # Uniform <=> all runs share the same repetition geometry, so the
        # layout is "instances" tiling both offset spaces.  A repeat-1 run
        # set (a plain record) is trivially uniform with one instance.
        self.repeat = None
        self.instance_prims = None
        self.instance_size = None
        if all(run.repeat == 1 for run in self.runs):
            # A plain record (or dense array) is trivially one instance.
            self.repeat = 1
            self.instance_prims = self.prim_count
            self.instance_size = self.local_size
        else:
            geometries = {(run.repeat, run.prim_stride, run.local_stride) for run in self.runs}
            if len(geometries) == 1:
                repeat, instance_prims, instance_size = next(iter(geometries))
                if (repeat * instance_prims == self.prim_count
                        and repeat * instance_size == self.local_size):
                    # Instances genuinely tile both offset spaces.
                    self.repeat = repeat
                    self.instance_prims = instance_prims
                    self.instance_size = instance_size
        self.has_variable = any(run.kind.is_variable_wire_size for run in self.runs)
        # Wire offset of each run's units within one instance's wire bytes
        # (only meaningful when every unit has a fixed wire size).
        self._instance_wire_offsets: Optional[List[int]] = None
        self.instance_wire_size: Optional[int] = None
        if not self.has_variable and self.repeat is not None:
            offsets, cursor = [], 0
            for run in self.runs:  # sorted by prim_start = in-instance order
                offsets.append(cursor)
                cursor += run.unit_count * WIRE_SIZES[run.kind]
            self._instance_wire_offsets = offsets
            self.instance_wire_size = cursor

    @property
    def uniform(self) -> bool:
        return self.repeat is not None

    def run_instance_wire_offset(self, run_index: int) -> int:
        """Wire byte offset of a run's units inside one instance (fixed-size only)."""
        if self._instance_wire_offsets is None:
            raise TypeDescriptorError("layout has variable-size units or is not uniform")
        return self._instance_wire_offsets[run_index]

    # -- offset mappings -------------------------------------------------------

    def prim_to_local(self, prim_offset: int) -> Tuple[PrimKind, int, int]:
        """Map a primitive offset to (kind, capacity, local byte offset)."""
        if not 0 <= prim_offset < self.prim_count:
            raise TypeDescriptorError(
                f"primitive offset {prim_offset} out of range [0, {self.prim_count})")
        for run in self.runs:
            hit = run.locate_prim(prim_offset)
            if hit is not None:
                i, j = hit
                return (run.kind, run.capacity, run.unit_local_offset(i, j))
        raise TypeDescriptorError(f"primitive offset {prim_offset} maps to no unit")

    def local_to_prim(self, byte_offset: int) -> Optional[Tuple[int, PrimKind, int, int]]:
        """Map a local byte offset to (prim offset, kind, capacity, unit start).

        Returns None when the byte falls in alignment padding.
        """
        if not 0 <= byte_offset < self.local_size:
            raise TypeDescriptorError(
                f"byte offset {byte_offset} out of range [0, {self.local_size})")
        for run in self.runs:
            delta = byte_offset - run.local_start
            if delta < 0:
                continue
            i, rem = divmod(delta, run.local_stride)
            if i >= run.repeat or rem >= run.unit_count * run.unit_size:
                continue
            j = rem // run.unit_size
            prim = run.prim_start + i * run.prim_stride + j
            return (prim, run.kind, run.capacity, run.unit_local_offset(i, j))
        return None

    def prim_runs_for_byte_range(self, byte_lo: int, byte_hi: int) -> List[Tuple[int, int]]:
        """Primitive-unit runs overlapping local bytes [byte_lo, byte_hi).

        This is the heart of diff collection: the word-diffing pass yields
        changed byte ranges, and this maps them into the machine-independent
        primitive runs that go on the wire.  The result is normalized
        (sorted, disjoint, merged).
        """
        byte_lo = max(0, byte_lo)
        byte_hi = min(self.local_size, byte_hi)
        if byte_lo >= byte_hi:
            return []
        if byte_lo == 0 and byte_hi == self.local_size:
            return [(0, self.prim_count)]

        prim_runs: List[Tuple[int, int]] = []
        if self.uniform and self.repeat > 1:
            # Whole instances in the middle cover a dense prim range; only
            # the partial head/tail instances need per-run treatment.
            first = byte_lo // self.instance_size
            last = (byte_hi - 1) // self.instance_size  # inclusive
            full_lo = first + (0 if byte_lo == first * self.instance_size else 1)
            full_hi = last + (1 if byte_hi == (last + 1) * self.instance_size else 0)
            if full_lo < full_hi:
                prim_runs.append(
                    (full_lo * self.instance_prims, (full_hi - full_lo) * self.instance_prims))
            partial = [i for i in (first, last) if not full_lo <= i < full_hi]
            for i in sorted(set(partial)):
                lo = max(byte_lo, i * self.instance_size)
                hi = min(byte_hi, (i + 1) * self.instance_size)
                prim_runs.extend(self._scan_runs(lo, hi, i, i + 1))
        else:
            prim_runs.extend(self._scan_runs(byte_lo, byte_hi, None, None))

        from repro.util import runs as run_algebra

        return run_algebra.normalize(prim_runs)


    def prim_runs_for_byte_ranges(self, byte_los, byte_his):
        """Vectorized :meth:`prim_runs_for_byte_range` over many ranges.

        ``byte_los``/``byte_his`` are parallel arrays of local byte ranges,
        sorted and disjoint (the shape word diffing produces).  Returns
        parallel numpy arrays (prim_starts, prim_counts), normalized.

        The single-dense-run layout (flat arrays — the diff-heavy case)
        takes a pure-array path; other layouts fall back to the scalar
        mapper per range.
        """
        import numpy as np

        byte_los = np.asarray(byte_los, dtype=np.int64)
        byte_his = np.asarray(byte_his, dtype=np.int64)
        if byte_los.size == 0:
            return byte_los, byte_his
        if (not self.has_variable and len(self.runs) == 1
                and self.runs[0].repeat == 1):
            run = self.runs[0]
            unit = run.unit_size
            los = np.clip(byte_los - run.local_start, 0,
                          run.unit_count * unit)
            his = np.clip(byte_his - run.local_start, 0,
                          run.unit_count * unit)
            j_lo = los // unit
            j_hi = (his + unit - 1) // unit
            valid = j_lo < j_hi
            starts = run.prim_start + j_lo[valid]
            ends = run.prim_start + j_hi[valid]
            starts, ends = merge_run_arrays(starts, ends)
            return starts, ends - starts
        collected = []
        for lo, hi in zip(byte_los.tolist(), byte_his.tolist()):
            collected.extend(self.prim_runs_for_byte_range(lo, hi))
        from repro.util import runs as run_algebra

        normalized = run_algebra.normalize(collected)
        starts = np.fromiter((s for s, _ in normalized), np.int64, len(normalized))
        counts = np.fromiter((c for _, c in normalized), np.int64, len(normalized))
        return starts, counts

    def _scan_runs(self, byte_lo: int, byte_hi: int,
                   inst_lo: Optional[int], inst_hi: Optional[int]) -> List[Tuple[int, int]]:
        """Per-run unit scan over a byte window, optionally clipped to an
        instance range (both measured in the run's own repetitions)."""
        out: List[Tuple[int, int]] = []
        for run in self.runs:
            units_bytes = run.unit_count * run.unit_size
            i_lo = 0 if byte_lo <= run.local_start else (byte_lo - run.local_start) // run.local_stride
            i_hi = (byte_hi - 1 - run.local_start) // run.local_stride
            if inst_lo is not None:
                i_lo = max(i_lo, inst_lo)
                i_hi = min(i_hi, inst_hi - 1)
            i_lo = max(i_lo, 0)
            i_hi = min(i_hi, run.repeat - 1)
            for i in range(i_lo, i_hi + 1):
                base = run.local_start + i * run.local_stride
                lo = max(byte_lo, base)
                hi = min(byte_hi, base + units_bytes)
                if lo >= hi:
                    continue
                j_lo = (lo - base) // run.unit_size
                j_hi = (hi - base + run.unit_size - 1) // run.unit_size
                j_hi = min(j_hi, run.unit_count)
                if j_lo < j_hi:
                    out.append((run.prim_start + i * run.prim_stride + j_lo, j_hi - j_lo))
        return out


def flat_layout(descriptor: TypeDescriptor, arch: Architecture,
                coalesce: bool = True) -> FlatLayout:
    """Return the (cached) flattened layout of ``descriptor`` on ``arch``."""
    cache = getattr(descriptor, "_flat_cache", None)
    if cache is None:
        cache = {}
        try:
            descriptor._flat_cache = cache
        except AttributeError:  # descriptors with __slots__ would land here
            return FlatLayout(descriptor, arch, coalesce)
    key = (arch.name, coalesce)
    layout = cache.get(key)
    if layout is None:
        layout = FlatLayout(descriptor, arch, coalesce)
        cache[key] = layout
    return layout


def iter_units(layout: FlatLayout, prim_lo: int, prim_hi: int) -> Iterator[Tuple[int, LayoutRun, int, int]]:
    """Yield (prim_offset, run, i, j) for every unit in [prim_lo, prim_hi),
    in ascending primitive-offset order.

    This is the per-unit slow path used for layouts with variable-size
    units; the vectorized translator bypasses it for fixed-size layouts.
    """
    entries = []
    for run in layout.runs:
        lo_i = 0
        if prim_lo > run.prim_start:
            lo_i = (prim_lo - run.prim_start) // run.prim_stride
        hi_i = min(run.repeat - 1, (prim_hi - 1 - run.prim_start) // run.prim_stride)
        for i in range(max(lo_i, 0), hi_i + 1):
            base = run.prim_start + i * run.prim_stride
            j_lo = max(0, prim_lo - base)
            j_hi = min(run.unit_count, prim_hi - base)
            for j in range(j_lo, j_hi):
                entries.append((base + j, run, i, j))
    entries.sort(key=lambda entry: entry[0])
    return iter(entries)


def merge_run_arrays(starts, ends, max_gap: int = 0):
    """Vectorized run normalization: merge sorted runs whose gaps are at
    most ``max_gap`` units.  Takes and returns parallel numpy arrays."""
    import numpy as np

    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.size == 0:
        return starts, ends
    new_group = np.concatenate(([True], starts[1:] > ends[:-1] + max_gap))
    group_firsts = np.flatnonzero(new_group)
    merged_starts = starts[new_group]
    merged_ends = np.maximum.reduceat(ends, group_firsts)
    return merged_starts, merged_ends
