"""Type descriptors, flattened layouts, and wire-format type encoding."""

from repro.types.descriptor import (
    CHAR,
    DOUBLE,
    FLOAT,
    HYPER,
    INT,
    PRIMITIVES,
    SHORT,
    ArrayDescriptor,
    Field,
    PointerDescriptor,
    PrimitiveDescriptor,
    RecordDescriptor,
    StringDescriptor,
    TypeDescriptor,
    descriptor_at,
    validate_closed,
)
from repro.types.layout import FlatLayout, LayoutRun, VAR_LEN_HEADER, flat_layout, iter_units
from repro.types.registry import TypeRegistry
from repro.types.wire_descriptor import decode_descriptor, encode_descriptor

__all__ = [
    "CHAR",
    "DOUBLE",
    "FLOAT",
    "HYPER",
    "INT",
    "PRIMITIVES",
    "SHORT",
    "ArrayDescriptor",
    "Field",
    "FlatLayout",
    "LayoutRun",
    "PointerDescriptor",
    "PrimitiveDescriptor",
    "RecordDescriptor",
    "StringDescriptor",
    "TypeDescriptor",
    "TypeRegistry",
    "VAR_LEN_HEADER",
    "decode_descriptor",
    "descriptor_at",
    "encode_descriptor",
    "flat_layout",
    "iter_units",
    "validate_closed",
]
