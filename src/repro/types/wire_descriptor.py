"""Machine-independent encoding of type descriptors.

The InterWeave server is oblivious to client languages and architectures:
it "must obtain its type descriptors from clients, and convert them to a
form that describes the layout of blocks in machine-independent wire
format".  This module is that form — a compact, canonical byte encoding of
a descriptor graph that any client can produce and the server (or another
client) can reconstruct.

The encoding is a flat table of descriptor nodes.  Records and pointer
targets refer to other nodes by table index, so arbitrary recursive type
graphs round-trip.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.errors import WireFormatError
from repro.types.descriptor import (
    ArrayDescriptor,
    Field,
    PointerDescriptor,
    PrimitiveDescriptor,
    RecordDescriptor,
    StringDescriptor,
    TypeDescriptor,
)
from repro.arch import PrimKind

_TAG_PRIMITIVE = 1
_TAG_STRING = 2
_TAG_POINTER = 3
_TAG_ARRAY = 4
_TAG_RECORD = 5

_PRIM_CODES = {
    PrimKind.CHAR: 1,
    PrimKind.SHORT: 2,
    PrimKind.INT: 3,
    PrimKind.HYPER: 4,
    PrimKind.FLOAT: 5,
    PrimKind.DOUBLE: 6,
}
_PRIM_BY_CODE = {code: kind for kind, code in _PRIM_CODES.items()}


def _pack_name(name: str) -> bytes:
    data = name.encode("utf-8")
    if len(data) > 0xFFFF:
        raise WireFormatError(f"name too long: {len(data)} bytes")
    return struct.pack(">H", len(data)) + data


def _unpack_name(buffer: bytes, offset: int):
    (length,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    return buffer[offset:offset + length].decode("utf-8"), offset + length


def encode_descriptor(descriptor: TypeDescriptor) -> bytes:
    """Serialize a descriptor graph to canonical wire bytes."""
    nodes: List[TypeDescriptor] = []
    index: Dict[int, int] = {}

    def visit(node: TypeDescriptor) -> int:
        node_id = id(node)
        if node_id in index:
            return index[node_id]
        slot = len(nodes)
        index[node_id] = slot
        nodes.append(node)
        if isinstance(node, ArrayDescriptor):
            visit(node.element)
        elif isinstance(node, RecordDescriptor):
            for field in node.fields:
                visit(field.descriptor)
        elif isinstance(node, PointerDescriptor):
            if node.target is None:
                raise WireFormatError(
                    f"cannot encode pointer with unresolved target {node.target_name!r}")
            visit(node.target)
        return slot

    visit(descriptor)

    parts = [struct.pack(">I", len(nodes))]
    for node in nodes:
        if isinstance(node, PrimitiveDescriptor):
            parts.append(struct.pack(">BB", _TAG_PRIMITIVE, _PRIM_CODES[node.kind]))
        elif isinstance(node, StringDescriptor):
            parts.append(struct.pack(">BI", _TAG_STRING, node.capacity))
        elif isinstance(node, PointerDescriptor):
            parts.append(struct.pack(">BI", _TAG_POINTER, index[id(node.target)]))
            parts.append(_pack_name(node.target_name))
        elif isinstance(node, ArrayDescriptor):
            parts.append(struct.pack(">BII", _TAG_ARRAY, index[id(node.element)], node.count))
        elif isinstance(node, RecordDescriptor):
            parts.append(struct.pack(">BH", _TAG_RECORD, len(node.fields)))
            parts.append(_pack_name(node.name))
            for field in node.fields:
                parts.append(_pack_name(field.name))
                parts.append(struct.pack(">I", index[id(field.descriptor)]))
        else:
            raise WireFormatError(f"cannot encode descriptor {node!r}")
    return b"".join(parts)


def decode_descriptor(buffer: bytes) -> TypeDescriptor:
    """Reconstruct a descriptor graph from :func:`encode_descriptor` bytes."""
    if len(buffer) < 4:
        raise WireFormatError("descriptor buffer truncated")
    (count,) = struct.unpack_from(">I", buffer, 0)
    if count == 0:
        raise WireFormatError("empty descriptor table")
    if count * 2 > len(buffer):  # every node needs at least 2 bytes
        raise WireFormatError(f"descriptor table claims {count} nodes "
                              f"in a {len(buffer)}-byte buffer")
    offset = 4
    # Two passes: materialize shells, then wire up references.
    nodes: List[TypeDescriptor] = [None] * count  # type: ignore[list-item]
    fixups = []  # (node_index, kind, payload)

    for slot in range(count):
        if offset >= len(buffer):
            raise WireFormatError("descriptor buffer truncated")
        tag = buffer[offset]
        offset += 1
        if tag == _TAG_PRIMITIVE:
            code = buffer[offset]
            offset += 1
            try:
                kind = _PRIM_BY_CODE[code]
            except KeyError:
                raise WireFormatError(f"unknown primitive code {code}") from None
            nodes[slot] = PrimitiveDescriptor(kind)
        elif tag == _TAG_STRING:
            (capacity,) = struct.unpack_from(">I", buffer, offset)
            offset += 4
            nodes[slot] = StringDescriptor(capacity)
        elif tag == _TAG_POINTER:
            (target,) = struct.unpack_from(">I", buffer, offset)
            offset += 4
            name, offset = _unpack_name(buffer, offset)
            nodes[slot] = PointerDescriptor(None, target_name=name)
            fixups.append((slot, "pointer", target))
        elif tag == _TAG_ARRAY:
            element, length = struct.unpack_from(">II", buffer, offset)
            offset += 8
            fixups.append((slot, "array", (element, length)))
        elif tag == _TAG_RECORD:
            (nfields,) = struct.unpack_from(">H", buffer, offset)
            offset += 2
            name, offset = _unpack_name(buffer, offset)
            field_specs = []
            for _ in range(nfields):
                field_name, offset = _unpack_name(buffer, offset)
                (field_type,) = struct.unpack_from(">I", buffer, offset)
                offset += 4
                field_specs.append((field_name, field_type))
            fixups.append((slot, "record", (name, field_specs)))
        else:
            raise WireFormatError(f"unknown descriptor tag {tag}")

    # Resolve arrays/records innermost-first; pointers last (may be cyclic).
    # Arrays and records cannot be cyclic without an intervening pointer, so
    # repeated passes terminate.
    pending = [fix for fix in fixups if fix[1] in ("array", "record")]
    while pending:
        progressed = False
        remaining = []
        for slot, kind, payload in pending:
            if kind == "array":
                element_slot, length = payload
                element = nodes[element_slot]
                if element is None:
                    remaining.append((slot, kind, payload))
                    continue
                nodes[slot] = ArrayDescriptor(element, length)
            else:
                name, field_specs = payload
                if any(nodes[type_slot] is None for _, type_slot in field_specs):
                    remaining.append((slot, kind, payload))
                    continue
                nodes[slot] = RecordDescriptor(
                    name, [Field(field_name, nodes[type_slot])
                           for field_name, type_slot in field_specs])
            progressed = True
        if not progressed:
            raise WireFormatError("cyclic array/record structure without pointer")
        pending = remaining

    for slot, kind, payload in fixups:
        if kind == "pointer":
            target = nodes[payload]
            if target is None:
                raise WireFormatError("pointer target unresolved after decode")
            nodes[slot].target = target

    root = nodes[0]
    if root is None:
        raise WireFormatError("empty descriptor table")
    return root
