"""Type descriptors.

As in multi-language RPC systems, the types of shared data in InterWeave
are declared in an IDL and compiled into *type descriptors* that tell the
library the substructure and layout of each type.  A descriptor records,
for every field, both the machine-specific byte offset (different on every
architecture) and the machine-independent *primitive offset* — the index of
the field counted in primitive data units from the start of the block.
Those two coordinate systems, and the mapping between them, are what let
InterWeave translate between local format and wire format and swizzle
pointers.

Descriptor kinds (mirroring the paper): a single pre-defined descriptor per
primitive type, plus derived descriptors for arrays, records, and pointers.
Strings get their own descriptor because their local representation (a
fixed-capacity buffer) is per-type.

Descriptors are immutable once built, except that :class:`PointerDescriptor`
targets may be patched after construction to close recursive types
(``struct node { node *next; }``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch import Architecture, PrimKind
from repro.errors import TypeDescriptorError


class TypeDescriptor:
    """Base class: a shape that can be laid out on any architecture."""

    #: number of primitive data units in one instance (machine-independent)
    prim_count: int

    def local_size(self, arch: Architecture) -> int:
        """Size in bytes of one instance in ``arch``'s local format."""
        raise NotImplementedError

    def local_align(self, arch: Architecture) -> int:
        """Required alignment in ``arch``'s local format."""
        raise NotImplementedError

    def type_key(self) -> tuple:
        """A hashable structural identity (used for descriptor interning).

        Pointer targets contribute only their *name* (or "anon") to the
        key, so recursive types terminate.
        """
        raise NotImplementedError

    # Subclasses are compared structurally via type_key.
    def __eq__(self, other):
        return isinstance(other, TypeDescriptor) and self.type_key() == other.type_key()

    def __hash__(self):
        return hash(self.type_key())


class PrimitiveDescriptor(TypeDescriptor):
    """A fixed-size primitive: char, short, int, hyper, float, or double."""

    def __init__(self, kind: PrimKind):
        if kind in (PrimKind.POINTER, PrimKind.STRING):
            raise TypeDescriptorError(f"{kind} needs its dedicated descriptor class")
        self.kind = kind
        self.prim_count = 1

    def local_size(self, arch: Architecture) -> int:
        return arch.prim_size(self.kind)

    def local_align(self, arch: Architecture) -> int:
        return arch.prim_align(self.kind)

    def type_key(self) -> tuple:
        return ("prim", self.kind.value)

    def __repr__(self):
        return f"Prim({self.kind.value})"


#: The pre-defined primitive descriptors (one per kind, as in the paper).
CHAR = PrimitiveDescriptor(PrimKind.CHAR)
SHORT = PrimitiveDescriptor(PrimKind.SHORT)
INT = PrimitiveDescriptor(PrimKind.INT)
HYPER = PrimitiveDescriptor(PrimKind.HYPER)
FLOAT = PrimitiveDescriptor(PrimKind.FLOAT)
DOUBLE = PrimitiveDescriptor(PrimKind.DOUBLE)

PRIMITIVES: Dict[str, PrimitiveDescriptor] = {
    descriptor.kind.value: descriptor
    for descriptor in (CHAR, SHORT, INT, HYPER, FLOAT, DOUBLE)
}


class StringDescriptor(TypeDescriptor):
    """A bounded string: one primitive unit, variable wire size.

    Locally a string is a fixed ``capacity``-byte buffer holding a
    NUL-terminated byte string (so it can be overwritten in place, and so
    page diffing sees its bytes).  On the wire it is sent as length +
    content only — which is why the paper's server stores strings
    out-of-line from their blocks.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise TypeDescriptorError(f"string capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.prim_count = 1

    def local_size(self, arch: Architecture) -> int:
        return self.capacity

    def local_align(self, arch: Architecture) -> int:
        return 1

    def type_key(self) -> tuple:
        return ("string", self.capacity)

    def __repr__(self):
        return f"String({self.capacity})"


class PointerDescriptor(TypeDescriptor):
    """A pointer: one primitive unit.

    Locally a machine address (4 or 8 bytes, NULL = 0); on the wire a MIP
    string.  ``target`` may be ``None`` transiently while the IDL compiler
    closes a recursive type, but must be set before layout/translation.
    """

    def __init__(self, target: Optional[TypeDescriptor] = None, target_name: str = "anon"):
        self.target = target
        self.target_name = target_name
        self.prim_count = 1

    def local_size(self, arch: Architecture) -> int:
        return arch.pointer_size

    def local_align(self, arch: Architecture) -> int:
        return arch.prim_align(PrimKind.POINTER)

    def type_key(self) -> tuple:
        return ("pointer", self.target_name)

    def __repr__(self):
        return f"Pointer(->{self.target_name})"


class ArrayDescriptor(TypeDescriptor):
    """A fixed-count array of a single element type, contiguous locally."""

    def __init__(self, element: TypeDescriptor, count: int):
        if count < 1:
            raise TypeDescriptorError(f"array count must be >= 1, got {count}")
        self.element = element
        self.count = count
        self.prim_count = element.prim_count * count

    def local_size(self, arch: Architecture) -> int:
        return self.element_stride(arch) * self.count

    def element_stride(self, arch: Architecture) -> int:
        """Per-element stride: the element size padded to its alignment."""
        align = self.element.local_align(arch)
        return Architecture.align_up(self.element.local_size(arch), align)

    def local_align(self, arch: Architecture) -> int:
        return self.element.local_align(arch)

    def type_key(self) -> tuple:
        return ("array", self.count, self.element.type_key())

    def __repr__(self):
        return f"Array({self.element!r} x {self.count})"


class Field:
    """One named field of a record."""

    __slots__ = ("name", "descriptor")

    def __init__(self, name: str, descriptor: TypeDescriptor):
        self.name = name
        self.descriptor = descriptor

    def __repr__(self):
        return f"Field({self.name}: {self.descriptor!r})"


class RecordDescriptor(TypeDescriptor):
    """A record (struct) of named, heterogeneous fields.

    Layout follows the target architecture's alignment rules: each field is
    placed at the next offset aligned for it, and the record is padded at
    the tail to a multiple of its own alignment (the strictest field
    alignment), exactly as a C compiler would.
    """

    def __init__(self, name: str, fields: List[Field]):
        if not fields:
            raise TypeDescriptorError(f"record {name!r} must have at least one field")
        seen = set()
        for field in fields:
            if field.name in seen:
                raise TypeDescriptorError(f"record {name!r}: duplicate field {field.name!r}")
            seen.add(field.name)
        self.name = name
        self.fields = list(fields)
        self.prim_count = sum(field.descriptor.prim_count for field in fields)
        self._layout_cache: Dict[str, Tuple[int, int, List[int]]] = {}

    # -- layout ---------------------------------------------------------------

    def _layout(self, arch: Architecture) -> Tuple[int, int, List[int]]:
        """Return (size, align, [field byte offsets]) for ``arch`` (cached)."""
        cached = self._layout_cache.get(arch.name)
        if cached is not None:
            return cached
        offset = 0
        align = 1
        offsets: List[int] = []
        for field in self.fields:
            field_align = field.descriptor.local_align(arch)
            align = max(align, field_align)
            offset = Architecture.align_up(offset, field_align)
            offsets.append(offset)
            offset += field.descriptor.local_size(arch)
        size = Architecture.align_up(offset, align)
        result = (size, align, offsets)
        self._layout_cache[arch.name] = result
        return result

    def local_size(self, arch: Architecture) -> int:
        return self._layout(arch)[0]

    def local_align(self, arch: Architecture) -> int:
        return self._layout(arch)[1]

    def field_local_offset(self, arch: Architecture, name: str) -> int:
        """Byte offset of field ``name`` in ``arch``'s local format."""
        for field, offset in zip(self.fields, self._layout(arch)[2]):
            if field.name == name:
                return offset
        raise TypeDescriptorError(f"record {self.name!r} has no field {name!r}")

    def field_prim_offset(self, name: str) -> int:
        """Machine-independent primitive offset of field ``name``."""
        prim = 0
        for field in self.fields:
            if field.name == name:
                return prim
            prim += field.descriptor.prim_count
        raise TypeDescriptorError(f"record {self.name!r} has no field {name!r}")

    def field(self, name: str) -> Field:
        for field in self.fields:
            if field.name == name:
                return field
        raise TypeDescriptorError(f"record {self.name!r} has no field {name!r}")

    def iter_field_layout(self, arch: Architecture):
        """Yield (field, local_byte_offset, prim_offset) in declaration order."""
        prim = 0
        for field, offset in zip(self.fields, self._layout(arch)[2]):
            yield field, offset, prim
            prim += field.descriptor.prim_count

    def type_key(self) -> tuple:
        return (
            "record",
            self.name,
            tuple((field.name, field.descriptor.type_key()) for field in self.fields),
        )

    def __repr__(self):
        return f"Record({self.name}, {len(self.fields)} fields)"


def descriptor_at(descriptor: TypeDescriptor, prim_offset: int) -> TypeDescriptor:
    """The sub-value descriptor whose first primitive unit sits at
    ``prim_offset`` — what a MIP with an interior offset points at.

    Descends through records and arrays; raises if the offset lands in the
    middle of a scalar span but not at a value boundary (impossible for
    offsets produced by pointer swizzling, which always reference a unit,
    but reachable from hand-written MIPs).
    """
    if prim_offset == 0:
        return descriptor
    if not 0 <= prim_offset < descriptor.prim_count:
        raise TypeDescriptorError(
            f"primitive offset {prim_offset} out of range [0, {descriptor.prim_count})")
    if isinstance(descriptor, ArrayDescriptor):
        index, rest = divmod(prim_offset, descriptor.element.prim_count)
        return descriptor_at(descriptor.element, rest)
    if isinstance(descriptor, RecordDescriptor):
        cursor = 0
        for field in descriptor.fields:
            count = field.descriptor.prim_count
            if prim_offset < cursor + count:
                return descriptor_at(field.descriptor, prim_offset - cursor)
            cursor += count
    raise TypeDescriptorError(
        f"primitive offset {prim_offset} is not a value boundary in {descriptor!r}")


def validate_closed(descriptor: TypeDescriptor, _seen=None) -> None:
    """Check every pointer in the type graph has a resolved target."""
    if _seen is None:
        _seen = set()
    if id(descriptor) in _seen:
        return
    _seen.add(id(descriptor))
    if isinstance(descriptor, PointerDescriptor):
        if descriptor.target is None:
            raise TypeDescriptorError(f"unresolved pointer target {descriptor.target_name!r}")
        validate_closed(descriptor.target, _seen)
    elif isinstance(descriptor, ArrayDescriptor):
        validate_closed(descriptor.element, _seen)
    elif isinstance(descriptor, RecordDescriptor):
        for field in descriptor.fields:
            validate_closed(field.descriptor, _seen)
