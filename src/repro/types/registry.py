"""Per-segment type descriptor registries.

Like blocks, type descriptors have segment-specific serial numbers that the
client and server use to refer to types in wire-format messages.  A
:class:`TypeRegistry` hands out those serials and interns descriptors by
structural identity, so the same IDL type registered twice (or decoded from
the wire twice) resolves to one serial.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import TypeDescriptorError
from repro.types.descriptor import TypeDescriptor, validate_closed
from repro.types.wire_descriptor import decode_descriptor, encode_descriptor


class TypeRegistry:
    """Maps type descriptors <-> segment-local serial numbers."""

    def __init__(self):
        self._by_serial: Dict[int, TypeDescriptor] = {}
        self._by_key: Dict[tuple, int] = {}
        self._encoded: Dict[int, bytes] = {}
        self._next_serial = 1

    def __len__(self) -> int:
        return len(self._by_serial)

    def register(self, descriptor: TypeDescriptor) -> int:
        """Intern ``descriptor`` and return its serial (idempotent)."""
        validate_closed(descriptor)
        key = descriptor.type_key()
        serial = self._by_key.get(key)
        if serial is not None:
            return serial
        serial = self._next_serial
        self._next_serial += 1
        self._by_serial[serial] = descriptor
        self._by_key[key] = serial
        self._encoded[serial] = encode_descriptor(descriptor)
        return serial

    def register_with_serial(self, serial: int, encoded: bytes) -> TypeDescriptor:
        """Install a descriptor received from the wire under a fixed serial.

        Used by the server (and by clients receiving segments containing
        types they have not registered locally) to adopt a peer's serial
        assignment.
        """
        existing = self._by_serial.get(serial)
        if existing is not None:
            if self._encoded[serial] != encoded:
                raise TypeDescriptorError(f"type serial {serial} already bound to a different type")
            return existing
        descriptor = decode_descriptor(encoded)
        key = descriptor.type_key()
        if key in self._by_key and self._by_key[key] != serial:
            raise TypeDescriptorError(
                f"type already registered under serial {self._by_key[key]}, got {serial}")
        self._by_serial[serial] = descriptor
        self._by_key[key] = serial
        self._encoded[serial] = encoded
        self._next_serial = max(self._next_serial, serial + 1)
        return descriptor

    def lookup(self, serial: int) -> TypeDescriptor:
        try:
            return self._by_serial[serial]
        except KeyError:
            raise TypeDescriptorError(f"unknown type serial {serial}") from None

    def serial_of(self, descriptor: TypeDescriptor) -> int:
        try:
            return self._by_key[descriptor.type_key()]
        except KeyError:
            raise TypeDescriptorError(f"descriptor {descriptor!r} not registered") from None

    def encoded(self, serial: int) -> bytes:
        try:
            return self._encoded[serial]
        except KeyError:
            raise TypeDescriptorError(f"unknown type serial {serial}") from None

    def contains_serial(self, serial: int) -> bool:
        return serial in self._by_serial

    def items(self) -> Iterator[Tuple[int, TypeDescriptor]]:
        return iter(sorted(self._by_serial.items()))

    def get_serial(self, descriptor: TypeDescriptor) -> Optional[int]:
        return self._by_key.get(descriptor.type_key())
