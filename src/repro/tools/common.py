"""Shared plumbing for the stand-alone service entry points.

Every ``repro.tools.*_main`` runs the same way: build the service, print
a banner, signal readiness (tests attach ``ready_port``-style attributes
to the event and wait on it), then sit in a stoppable wait loop until
SIGINT or the caller's ``stop_event``, and finally tear down.  This
module keeps that loop in one place so the entry points only contain
what is genuinely theirs: the parser and the service wiring.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, Optional


def run_service(banner: str,
                ready_event: Optional["threading.Event"] = None,
                stop_event: Optional["threading.Event"] = None,
                ready_attrs: Optional[dict] = None,
                cleanup: Optional[Callable[[], None]] = None) -> int:
    """Print ``banner``, publish readiness, wait for stop, tear down.

    ``ready_attrs`` are attached to ``ready_event`` before it is set —
    the handshake tests use to learn ephemeral ports (``ready_port``,
    ``ready_ports``...).  ``cleanup`` runs exactly once on the way out,
    whether the loop ended by SIGINT or by ``stop_event``.  Returns 0.
    """
    print(banner, flush=True)
    if ready_event is not None:
        for attr, value in (ready_attrs or {}).items():
            setattr(ready_event, attr, value)
        ready_event.set()
    stop = stop_event or threading.Event()
    try:
        signal.signal(signal.SIGINT, lambda *_: stop.set())
    except ValueError:
        pass  # not the main thread (tests)
    try:
        while not stop.wait(0.2):
            pass
    finally:
        if cleanup is not None:
            cleanup()
    return 0
