"""Shared plumbing for the stand-alone service entry points.

Every ``repro.tools.*_main`` runs the same way: build the service, print
a banner, signal readiness (tests attach ``ready_port``-style attributes
to the event and wait on it), then sit in a stoppable wait loop until
SIGINT or the caller's ``stop_event``, and finally tear down.  This
module keeps that loop in one place so the entry points only contain
what is genuinely theirs: the parser and the service wiring.
"""

from __future__ import annotations

import argparse
import signal
import threading
from typing import Callable, Optional


def add_io_arguments(parser: "argparse.ArgumentParser") -> None:
    """Add the server I/O backend flags shared by every listening tool.

    ``--io threads`` (default) is the thread-per-connection transport;
    ``--io asyncio`` runs every connection on one event loop and can
    additionally mount the HTTP/1.1 JSON gateway with ``--gateway-port``
    (see docs/GATEWAY.md).
    """
    parser.add_argument("--io", choices=("threads", "asyncio"),
                        default="threads",
                        help="server I/O backend: 'threads' = one "
                             "reader/writer thread pair per connection; "
                             "'asyncio' = one event loop for every "
                             "connection (10k+ connections)")
    parser.add_argument("--gateway-port", type=int, default=None,
                        metavar="PORT",
                        help="with --io asyncio: also serve the HTTP/1.1 "
                             "JSON gateway (GET /segments/{name}, "
                             "GET /stats) on this port (0 = pick a free "
                             "one)")


def make_server_transport(dispatcher, args, *, host=None, port=None,
                          gateway: bool = True, **kwargs):
    """Build the server transport selected by ``--io``.

    ``host``/``port`` default to ``args.host``/``args.port`` so single
    -listener tools need no arguments; multi-listener tools (cluster)
    pass them explicitly and set ``gateway=False`` for the listeners
    that should not mount the HTTP gateway.
    """
    from repro.transport import AsyncTCPServerTransport, TCPServerTransport

    host = args.host if host is None else host
    port = args.port if port is None else port
    io = getattr(args, "io", "threads")
    gateway_port = getattr(args, "gateway_port", None) if gateway else None
    if io == "asyncio":
        return AsyncTCPServerTransport(dispatcher, host=host, port=port,
                                       gateway_port=gateway_port, **kwargs)
    if gateway_port is not None:
        raise SystemExit("--gateway-port requires --io asyncio")
    return TCPServerTransport(dispatcher, host=host, port=port, **kwargs)


def run_service(banner: str,
                ready_event: Optional["threading.Event"] = None,
                stop_event: Optional["threading.Event"] = None,
                ready_attrs: Optional[dict] = None,
                cleanup: Optional[Callable[[], None]] = None) -> int:
    """Print ``banner``, publish readiness, wait for stop, tear down.

    ``ready_attrs`` are attached to ``ready_event`` before it is set —
    the handshake tests use to learn ephemeral ports (``ready_port``,
    ``ready_ports``...).  ``cleanup`` runs exactly once on the way out,
    whether the loop ended by SIGINT or by ``stop_event``.  Returns 0.
    """
    print(banner, flush=True)
    if ready_event is not None:
        for attr, value in (ready_attrs or {}).items():
            setattr(ready_event, attr, value)
        ready_event.set()
    stop = stop_event or threading.Event()
    try:
        signal.signal(signal.SIGINT, lambda *_: stop.set())
    except ValueError:
        pass  # not the main thread (tests)
    try:
        while not stop.wait(0.2):
            pass
    finally:
        if cleanup is not None:
            cleanup()
    return 0
