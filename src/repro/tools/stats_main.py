"""Query a live InterWeave server for its stats snapshot.

Usage::

    python -m repro.tools.stats_main [--host HOST] [--port PORT] [--json]

Connects over TCP, sends a :class:`GetStatsRequest`, and prints the reply
either as a human-readable table (default) or as the raw canonical JSON
payload (``--json``).  The snapshot covers the server's segment table and
every metric in its process-wide registry — which, for a server co-hosted
with client code, includes client-side metrics too (MMU faults, diff
collection, swizzling); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import TransportError
from repro.obs.export import render_table
from repro.transport.tcp import TCPChannel
from repro.wire.messages import (
    GetStatsReply,
    GetStatsRequest,
    decode_message,
    encode_message,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Print a live InterWeave server's stats snapshot.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="server host (default: %(default)s)")
    parser.add_argument("--port", type=int, required=True,
                        help="server TCP port")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="connect/request timeout in seconds "
                             "(default: %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="print the raw JSON payload instead of a table")
    return parser


def fetch_snapshot(host: str, port: int, timeout: float = 5.0) -> GetStatsReply:
    channel = TCPChannel(host, port, client_id="stats-cli", timeout=timeout)
    try:
        raw = channel.request(encode_message(GetStatsRequest("stats-cli")))
    finally:
        channel.close()
    reply = decode_message(raw)
    if not isinstance(reply, GetStatsReply):
        raise TransportError(f"unexpected reply {type(reply).__name__}")
    return reply


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        reply = fetch_snapshot(args.host, args.port, timeout=args.timeout)
    except TransportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(reply.payload)
    else:
        print(render_table(reply.to_dict()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
