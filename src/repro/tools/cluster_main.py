"""Stand-alone multi-origin cluster over TCP.

Usage::

    python -m repro.tools.cluster_main [--origins N] [--host H]
        [--directory-port P] [--diff-cache-mb M]

Runs a :class:`~repro.cluster.SegmentDirectory` plus ``N`` origin
servers (``origin-0`` ... ``origin-N-1``), each behind its own
:class:`~repro.transport.TCPServerTransport`, and a
:class:`~repro.cluster.ClusterCoordinator` wired to the directory so
``DIR_MIGRATE`` directory updates sent by clients trigger live
migrations.  Clients resolve segment names through the directory
(:class:`~repro.cluster.DirectoryResolver` over a connection pool that
maps each origin's name to its address) and chase WrongServer redirects
when segments move.

Ports default to 0 (pick a free one each); the banner lists the chosen
ports, and the readiness handshake exposes them as ``ready_port`` (the
directory) and ``ready_ports`` (name → port for every component).
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.cluster import ClusterCoordinator, SegmentDirectory
from repro.obs.metrics import MetricsRegistry
from repro.server import InterWeaveServer
from repro.tools.common import add_io_arguments, make_server_transport, run_service
from repro.transport import MuxConnectionPool, RetryPolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Serve InterWeave segments from a sharded origin cluster.")
    parser.add_argument("--origins", type=int, default=2,
                        help="number of origin servers to run")
    parser.add_argument("--host", default="127.0.0.1",
                        help="address every component listens on")
    parser.add_argument("--directory-port", type=int, default=0,
                        help="directory TCP port (0 = pick a free one)")
    parser.add_argument("--diff-cache-mb", type=int, default=16,
                        help="per-origin diff cache capacity in MiB")
    parser.add_argument("--ring-replicas", type=int, default=64,
                        help="virtual ring points per origin")
    add_io_arguments(parser)
    return parser


def serve(args, ready_event: "threading.Event" = None,
          stop_event: "threading.Event" = None) -> int:
    """Run the cluster until ``stop_event`` (or SIGINT).  Returns 0."""
    if args.origins < 1:
        raise SystemExit("--origins must be at least 1")
    transports = []
    origin_names = [f"origin-{index}" for index in range(args.origins)]
    addresses = {}
    for name in origin_names:
        # each origin gets a private registry so GetStats reports
        # per-origin numbers instead of a process-wide mixture
        server = InterWeaveServer(
            name, metrics=MetricsRegistry(),
            diff_cache_bytes=args.diff_cache_mb * 1024 * 1024)
        # origins inherit the --io backend; the gateway (if any) mounts
        # on the directory below, the one address clients already know
        transport = make_server_transport(server, args, host=args.host,
                                          port=0, gateway=False)
        transports.append(transport)
        addresses[name] = (transport.host, transport.port)

    directory = SegmentDirectory(origins=origin_names,
                                 replicas=args.ring_replicas,
                                 metrics=MetricsRegistry())
    directory_transport = make_server_transport(
        directory, args, host=args.host, port=args.directory_port)
    transports.append(directory_transport)

    pool = MuxConnectionPool(dict(addresses), retry=RetryPolicy())
    coordinator = ClusterCoordinator(directory, pool.connect)

    ports = {"directory": directory_transport.port,
             "origins": {name: port for name, (_host, port)
                         in addresses.items()}}
    listing = ", ".join(f"{name}={port}"
                        for name, port in ports["origins"].items())

    def cleanup() -> None:
        for transport in transports:
            transport.close()
        coordinator.close()
        pool.close()

    gateway = ""
    if getattr(directory_transport, "gateway_port", None) is not None:
        gateway = (f"; gateway at http://{directory_transport.gateway_host}:"
                   f"{directory_transport.gateway_port}")
    return run_service(
        f"[repro-cluster] directory on "
        f"{directory_transport.host}:{directory_transport.port} "
        f"[{args.io}]{gateway}; "
        f"{args.origins} origin(s): {listing}",
        ready_event, stop_event,
        ready_attrs={"ready_port": directory_transport.port,
                     "ready_ports": ports,
                     "ready_gateway_port": getattr(directory_transport,
                                                   "gateway_port", None)},
        cleanup=cleanup)


def main(argv=None) -> int:
    return serve(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
