"""Stand-alone InterWeave server over TCP.

Usage::

    python -m repro.tools.server_main [--host H] [--port P]
        [--checkpoint-dir DIR] [--checkpoint-every N] [--restore]

Runs an :class:`~repro.server.InterWeaveServer` behind a
:class:`~repro.transport.TCPServerTransport`.  With ``--restore``, every
``*.iwck`` checkpoint in the checkpoint directory is loaded before
serving, so a crashed server resumes with its persistent segments.
Clients connect with :class:`~repro.transport.TCPChannel`; push
notifications are unavailable over TCP, so clients poll (the adaptive
protocol handles this automatically).
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import threading

from repro.server import InterWeaveServer, read_checkpoint
from repro.tools.common import run_service
from repro.transport import TCPServerTransport


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve InterWeave segments over TCP.")
    parser.add_argument("--name", default="server",
                        help="server name (clients address segments as name/path)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = pick a free one)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for periodic segment checkpoints")
    parser.add_argument("--checkpoint-every", type=int, default=16,
                        help="checkpoint a segment every N versions")
    parser.add_argument("--restore", action="store_true",
                        help="load existing checkpoints before serving")
    parser.add_argument("--diff-cache-mb", type=int, default=16,
                        help="diff cache capacity in MiB")
    return parser


def serve(args, ready_event: "threading.Event" = None,
          stop_event: "threading.Event" = None) -> int:
    """Run the server until ``stop_event`` (or SIGINT).  Returns 0."""
    server = InterWeaveServer(
        args.name,
        diff_cache_bytes=args.diff_cache_mb * 1024 * 1024,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every if args.checkpoint_dir else 0)
    restored = 0
    if args.restore and args.checkpoint_dir:
        for path in sorted(glob.glob(os.path.join(args.checkpoint_dir, "*.iwck"))):
            server.add_segment(read_checkpoint(path))
            restored += 1
    transport = TCPServerTransport(server, host=args.host, port=args.port)

    def cleanup() -> None:
        transport.close()
        if args.checkpoint_dir:
            for name in list(server.segments):
                if server.segments[name].state.version > 0:
                    server.checkpoint_segment(name)
            print("[repro-server] final checkpoints written", flush=True)

    return run_service(
        f"[repro-server] {args.name!r} listening on "
        f"{transport.host}:{transport.port} "
        f"({restored} segment(s) restored)",
        ready_event, stop_event,
        ready_attrs={"ready_port": transport.port},
        cleanup=cleanup)


def main(argv=None) -> int:
    return serve(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
