"""Stand-alone InterWeave server over TCP.

Usage::

    python -m repro.tools.server_main [--host H] [--port P]
        [--checkpoint-dir DIR] [--checkpoint-every N] [--restore]
        [--wal-dir DIR] [--no-wal-fsync] [--role primary|backup]

Runs an :class:`~repro.server.InterWeaveServer` behind a
:class:`~repro.transport.TCPServerTransport`.  With ``--restore``, the
server recovers its persistent segments before serving: checkpoints from
``--checkpoint-dir``, then the diff write-ahead log from ``--wal-dir``
replayed on top (torn tails truncated), so a SIGKILL'd server resumes
with every committed version.  ``--role backup`` starts the server as a
replication target: it only accepts the ReplicateAppend/ReplicateCatchup
stream (and stats) until a coordinator promotes it.  Clients connect
with :class:`~repro.transport.TCPChannel`; push notifications are
unavailable over TCP, so clients poll (the adaptive protocol handles
this automatically).
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.server import InterWeaveServer
from repro.tools.common import add_io_arguments, make_server_transport, run_service


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve InterWeave segments over TCP.")
    parser.add_argument("--name", default="server",
                        help="server name (clients address segments as name/path)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = pick a free one)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for periodic segment checkpoints")
    parser.add_argument("--checkpoint-every", type=int, default=16,
                        help="checkpoint a segment every N versions")
    parser.add_argument("--restore", action="store_true",
                        help="recover checkpoints (and replay the WAL) "
                             "before serving")
    parser.add_argument("--wal-dir", default=None,
                        help="directory for per-segment diff write-ahead "
                             "logs (commits become durable before they "
                             "are acknowledged)")
    parser.add_argument("--no-wal-fsync", action="store_true",
                        help="skip the per-append fsync (page-cache "
                             "durability only; survives process crashes, "
                             "not power loss)")
    parser.add_argument("--role", choices=("primary", "backup"),
                        default="primary",
                        help="'backup' only accepts the replication stream "
                             "until promoted")
    parser.add_argument("--quorum-ack", action="store_true",
                        help="answer a write release only after the backup "
                             "acked the replicated diff (RPO=0 across "
                             "machine loss; degrades to async replication "
                             "after --quorum-timeout)")
    parser.add_argument("--quorum-timeout", type=float, default=1.0,
                        help="seconds a quorum-ack release waits for the "
                             "backup before degrading to async")
    parser.add_argument("--diff-cache-mb", type=int, default=16,
                        help="diff cache capacity in MiB")
    add_io_arguments(parser)
    return parser


def serve(args, ready_event: "threading.Event" = None,
          stop_event: "threading.Event" = None) -> int:
    """Run the server until ``stop_event`` (or SIGINT).  Returns 0."""
    server = InterWeaveServer(
        args.name,
        diff_cache_bytes=args.diff_cache_mb * 1024 * 1024,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every if args.checkpoint_dir else 0,
        wal_dir=args.wal_dir,
        wal_fsync=not args.no_wal_fsync,
        role=args.role,
        quorum_ack=args.quorum_ack,
        quorum_timeout=args.quorum_timeout)
    restored = 0
    replayed = 0
    if args.restore and (args.checkpoint_dir or args.wal_dir):
        recovery = server.recover_segments()
        restored = len(server.segments)
        replayed = sum(applied for applied, _skipped in recovery.values())
    transport = make_server_transport(server, args)

    def cleanup() -> None:
        transport.close()
        if args.checkpoint_dir:
            for name in list(server.segments):
                if server.segments[name].state.version > 0:
                    server.checkpoint_segment(name)
            print("[repro-server] final checkpoints written", flush=True)
        server.close()

    gateway = ""
    if getattr(transport, "gateway_port", None) is not None:
        gateway = (f", gateway at http://{transport.gateway_host}:"
                   f"{transport.gateway_port}")
    return run_service(
        f"[repro-server] {args.name!r} ({args.role}) listening on "
        f"{transport.host}:{transport.port} [{args.io}]{gateway} "
        f"({restored} segment(s) restored, {replayed} WAL record(s) "
        f"replayed)",
        ready_event, stop_event,
        ready_attrs={"ready_port": transport.port,
                     "ready_gateway_port": getattr(transport, "gateway_port",
                                                   None)},
        cleanup=cleanup)


def main(argv=None) -> int:
    return serve(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
