"""The InterWeave IDL compiler, as a command-line tool.

Usage::

    python -m repro.tools.idlc_main TYPES.idl [-o HEADER.h] [--layout ARCH]

Compiles an IDL file and emits the C language binding (a header whose
declarations follow the IDL structure, as the paper requires).  With
``--layout ARCH`` it instead prints each type's computed layout on that
architecture — field offsets, sizes, padding, and the flattened
translation runs the library would use (including the effect of the
isomorphic-descriptor optimization).
"""

from __future__ import annotations

import argparse
import sys

from repro.arch import ARCHITECTURES, get_architecture
from repro.idl import compile_idl, generate_c_header
from repro.types import RecordDescriptor, flat_layout


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-idlc",
        description="Compile InterWeave IDL to a C binding or layout report.")
    parser.add_argument("source", help="IDL source file")
    parser.add_argument("-o", "--output", default=None,
                        help="write the C header here (default: stdout)")
    parser.add_argument("--guard", default=None, help="header include guard")
    parser.add_argument("--layout", metavar="ARCH", default=None,
                        choices=sorted(ARCHITECTURES),
                        help="print per-type layouts for one architecture")
    return parser


def layout_report(compiled, arch_name: str, out=None) -> None:
    out = out or sys.stdout
    arch = get_architecture(arch_name)
    print(f"layouts on {arch.name} "
          f"({arch.endian}-endian, {arch.pointer_size * 8}-bit pointers):",
          file=out)
    for name, descriptor in compiled.types.items():
        print(f"\n{name}: {descriptor.local_size(arch)} bytes, "
              f"align {descriptor.local_align(arch)}, "
              f"{descriptor.prim_count} primitive units", file=out)
        if isinstance(descriptor, RecordDescriptor):
            for field, offset, prim in descriptor.iter_field_layout(arch):
                print(f"  +{offset:<4d} (unit {prim:<3d}) {field.name}: "
                      f"{field.descriptor!r}", file=out)
        layout = flat_layout(descriptor, arch)
        print(f"  translation program: {len(layout.runs)} run(s)", file=out)
        for run in layout.runs:
            print(f"    {run!r}", file=out)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"repro-idlc: cannot read {args.source}: {exc}", file=sys.stderr)
        return 2
    from repro.errors import IDLError

    try:
        compiled = compile_idl(source)
    except IDLError as exc:
        print(f"repro-idlc: {args.source}: {exc}", file=sys.stderr)
        return 1
    if args.layout:
        layout_report(compiled, args.layout)
        return 0
    guard = args.guard
    if guard is None:
        stem = args.source.rsplit("/", 1)[-1].split(".")[0]
        guard = f"IW_{stem.upper()}_H"
    header = generate_c_header(compiled, guard=guard)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(header)
    else:
        sys.stdout.write(header)
    return 0


if __name__ == "__main__":
    sys.exit(main())
