"""Command-line tools: server daemon, checkpoint inspector, IDL compiler."""
