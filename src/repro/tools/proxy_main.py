"""Stand-alone caching proxy over TCP.

Usage::

    python -m repro.tools.proxy_main --origin-host H --origin-port P
        [--name NAME] [--host H] [--port P] [--max-staleness S]

Runs a :class:`~repro.proxy.CachingProxy` behind a
:class:`~repro.transport.TCPServerTransport`.  Downstream clients
connect with :class:`~repro.transport.TCPChannel` (or a multiplexed
channel) exactly as they would to a server; upstream the proxy shares
one multiplexed connection to the origin
(:class:`~repro.transport.MuxConnectionPool`) across all forwarded
traffic.  Plain TCP cannot push, so freshness comes from the
``--max-staleness`` window (see ``docs/PROTOCOL.md`` §"Relay tier").

In a cluster, ``--origin-server NAME=HOST:PORT`` (repeatable) teaches
the upstream pool the other origins so redirects can be chased, and
``--directory NAME`` attaches a
:class:`~repro.cluster.DirectoryResolver` so the relay re-resolves and
re-attaches when an origin fails over to a promoted backup (the
directory itself must be one of the ``--origin-server`` entries).
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.cluster import DirectoryResolver
from repro.proxy import CachingProxy
from repro.tools.common import add_io_arguments, make_server_transport, run_service
from repro.transport import MuxConnectionPool, RetryPolicy


def _parse_origin_server(spec: str):
    name, separator, address = spec.partition("=")
    host, colon, port = address.rpartition(":")
    if not separator or not name or not colon or not host:
        raise argparse.ArgumentTypeError(
            f"expected NAME=HOST:PORT, got {spec!r}")
    try:
        return name, host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"port in {spec!r} is not an integer")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-proxy",
        description="Relay InterWeave segments from an origin server.")
    parser.add_argument("--name", default="server",
                        help="server name clients address (segment names are "
                             "name/path; must match the origin's naming)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="address to listen on for downstream clients")
    parser.add_argument("--port", type=int, default=0,
                        help="downstream TCP port (0 = pick a free one)")
    parser.add_argument("--origin-host", required=True,
                        help="origin server address")
    parser.add_argument("--origin-port", type=int, required=True,
                        help="origin server port")
    parser.add_argument("--max-staleness", type=float, default=0.05,
                        help="seconds the relay may serve coherence decisions "
                             "without contacting the origin")
    parser.add_argument("--diff-cache-mb", type=int, default=16,
                        help="relay diff cache capacity in MiB")
    parser.add_argument("--upstream-timeout", type=float, default=10.0,
                        help="origin request timeout in seconds")
    parser.add_argument("--origin-server", action="append", default=[],
                        type=_parse_origin_server, metavar="NAME=HOST:PORT",
                        help="additional upstream server (repeatable): other "
                             "cluster origins, promoted backups, and the "
                             "directory service")
    parser.add_argument("--directory", default=None, metavar="NAME",
                        help="directory server name for failover "
                             "re-resolution (must be reachable through "
                             "--origin-server)")
    add_io_arguments(parser)
    return parser


def serve(args, ready_event: "threading.Event" = None,
          stop_event: "threading.Event" = None) -> int:
    """Run the proxy until ``stop_event`` (or SIGINT).  Returns 0."""
    pool = MuxConnectionPool(
        {args.name: (args.origin_host, args.origin_port)},
        timeout=args.upstream_timeout, retry=RetryPolicy())
    for name, host, port in args.origin_server:
        pool.add_server(name, host, port)
    resolver = None
    if args.directory is not None:
        resolver = DirectoryResolver(pool.connect, directory=args.directory,
                                     client_id=f"{args.name}!resolver")
    proxy = CachingProxy(
        args.name, connector=pool.connect,
        diff_cache_bytes=args.diff_cache_mb * 1024 * 1024,
        max_staleness=args.max_staleness,
        resolver=resolver)
    transport = make_server_transport(proxy, args)

    def cleanup() -> None:
        transport.close()
        proxy.close()
        if resolver is not None:
            resolver.close()
        pool.close()

    gateway = ""
    if getattr(transport, "gateway_port", None) is not None:
        gateway = (f", gateway at http://{transport.gateway_host}:"
                   f"{transport.gateway_port}")
    return run_service(
        f"[repro-proxy] {args.name!r} listening on "
        f"{transport.host}:{transport.port} [{args.io}]{gateway}, origin at "
        f"{args.origin_host}:{args.origin_port}",
        ready_event, stop_event,
        ready_attrs={"ready_port": transport.port,
                     "ready_gateway_port": getattr(transport, "gateway_port",
                                                   None)},
        cleanup=cleanup)


def main(argv=None) -> int:
    return serve(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
