"""Inspect an InterWeave checkpoint file.

Usage::

    python -m repro.tools.inspect_main SEGMENT.iwck [--blocks] [--types]

Prints the segment's identity, version history, block inventory, and
(optionally) per-block detail: serials, names, types, sizes, versions,
and subblock staleness.  Useful when debugging a server's persistent
state without starting it.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.server import read_checkpoint
from repro.server.segment_state import SUBBLOCK_UNITS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Inspect an InterWeave segment checkpoint.")
    parser.add_argument("checkpoint", help="path to a .iwck file")
    parser.add_argument("--blocks", action="store_true",
                        help="list every block")
    parser.add_argument("--types", action="store_true",
                        help="list registered type descriptors")
    return parser


def describe(segment, show_blocks: bool, show_types: bool, out=None) -> None:
    out = out or sys.stdout
    blocks = segment.blocks
    print(f"segment      : {segment.name}", file=out)
    print(f"version      : {segment.version}", file=out)
    print(f"blocks       : {len(blocks)}", file=out)
    print(f"data bytes   : {segment.total_data_bytes}", file=out)
    print(f"prim units   : {segment.total_prim_units}", file=out)
    print(f"types        : {len(segment.registry)}", file=out)
    print(f"MIPs stored  : {len(segment.mip_store)}", file=out)
    print(f"tombstones   : {len(segment.freed_log)}", file=out)
    if segment.version_times:
        newest = max(segment.version_times)
        print(f"newest stamp : v{newest} @ t={segment.version_times[newest]:g}",
              file=out)
    if show_types:
        print("\ntype descriptors:", file=out)
        for serial, descriptor in segment.registry.items():
            print(f"  #{serial:<4d} {descriptor!r} "
                  f"({descriptor.prim_count} units)", file=out)
    if show_blocks:
        print("\nblocks:", file=out)
        print(f"  {'serial':>6s} {'name':<16s} {'type':>4s} {'units':>8s} "
              f"{'version':>7s} {'stale-sb':>8s}", file=out)
        for serial in sorted(blocks):
            block = blocks[serial]
            versions = block.subblock_versions
            behind = int(np.count_nonzero(versions < block.version))
            print(f"  {serial:>6d} {block.info.name or '-':<16s} "
                  f"{block.info.type_serial:>4d} {block.prim_count:>8d} "
                  f"{block.version:>7d} {behind:>4d}/{versions.size:<3d}",
                  file=out)
    _ = SUBBLOCK_UNITS  # referenced for readers of the column meaning


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    segment = read_checkpoint(args.checkpoint)
    describe(segment, args.blocks, args.types)
    return 0


if __name__ == "__main__":
    sys.exit(main())
